//! Floating-point comparison helpers.

/// Returns `true` when `a` and `b` agree to within `rel` relative tolerance
/// or `abs_tol` absolute tolerance, whichever is looser.
///
/// Intended for tests and convergence checks; NaNs are never approximately
/// equal to anything.
///
/// # Examples
///
/// ```
/// use memlat_numerics::float::approx_eq_tol;
/// assert!(approx_eq_tol(1.0, 1.0 + 1e-12, 1e-9, 1e-9));
/// assert!(!approx_eq_tol(1.0, 1.1, 1e-9, 1e-9));
/// ```
#[must_use]
pub fn approx_eq_tol(a: f64, b: f64, rel: f64, abs_tol: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    let diff = (a - b).abs();
    if diff <= abs_tol {
        return true;
    }
    diff <= rel * a.abs().max(b.abs())
}

/// [`approx_eq_tol`] with a default tolerance of `1e-9` (relative and
/// absolute).
///
/// # Examples
///
/// ```
/// assert!(memlat_numerics::approx_eq(0.1 + 0.2, 0.3));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_tol(a, b, 1e-9, 1e-9)
}

/// Clamps `x` into the closed unit interval `[0, 1]`.
///
/// Useful when a numerically computed probability drifts slightly outside
/// the unit interval.
///
/// # Examples
///
/// ```
/// use memlat_numerics::float::clamp_unit;
/// assert_eq!(clamp_unit(-0.0001), 0.0);
/// assert_eq!(clamp_unit(0.5), 0.5);
/// assert_eq!(clamp_unit(1.2), 1.0);
/// ```
#[must_use]
pub fn clamp_unit(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// Returns `true` when `p` is a valid probability (finite and within
/// `[0, 1]`).
///
/// # Examples
///
/// ```
/// use memlat_numerics::float::is_probability;
/// assert!(is_probability(0.0));
/// assert!(is_probability(1.0));
/// assert!(!is_probability(1.5));
/// assert!(!is_probability(f64::NAN));
/// ```
#[must_use]
pub fn is_probability(p: f64) -> bool {
    p.is_finite() && (0.0..=1.0).contains(&p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(0.0, 1e-12));
        assert!(!approx_eq(1.0, 1.01));
    }

    #[test]
    fn approx_eq_relative_kicks_in_for_large_values() {
        assert!(approx_eq_tol(1e12, 1e12 + 1.0, 1e-9, 0.0));
        assert!(!approx_eq_tol(1e12, 1e12 + 1e6, 1e-9, 0.0));
    }

    #[test]
    fn nan_never_equal() {
        assert!(!approx_eq(f64::NAN, f64::NAN));
        assert!(!approx_eq(1.0, f64::NAN));
    }

    #[test]
    fn clamp_unit_bounds() {
        assert_eq!(clamp_unit(f64::NEG_INFINITY), 0.0);
        assert_eq!(clamp_unit(f64::INFINITY), 1.0);
        assert_eq!(clamp_unit(0.25), 0.25);
    }

    #[test]
    fn probability_check() {
        assert!(is_probability(0.5));
        assert!(!is_probability(-0.1));
        assert!(!is_probability(f64::INFINITY));
    }
}
