//! Property-based tests for distribution laws.

use memlat_dist::{
    Binomial, Continuous, Deterministic, Discrete, Exponential, Gamma, GeneralizedPareto,
    GeometricBatch, Hyperexponential, LogNormal, Uniform, Weibull, Zipf,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn all_continuous(mean: f64, xi: f64) -> Vec<Box<dyn Continuous>> {
    vec![
        Box::new(Exponential::with_mean(mean).unwrap()),
        Box::new(Deterministic::new(mean).unwrap()),
        Box::new(Uniform::with_mean(mean).unwrap()),
        Box::new(Gamma::erlang(3, mean).unwrap()),
        Box::new(GeneralizedPareto::with_mean(xi, mean).unwrap()),
        Box::new(Hyperexponential::with_mean_scv(mean, 4.0).unwrap()),
        Box::new(Weibull::with_mean(0.7, mean).unwrap()),
        Box::new(LogNormal::with_mean_scv(mean, 1.5).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every continuous distribution has a proper, monotone CDF anchored
    /// at 0 for negative arguments.
    #[test]
    fn cdf_is_proper(mean in 0.01f64..100.0, xi in 0.0f64..0.9, t in 0.0f64..500.0, dt in 0.0f64..50.0) {
        for d in all_continuous(mean, xi) {
            prop_assert_eq!(d.cdf(-1.0), 0.0);
            let a = d.cdf(t);
            let b = d.cdf(t + dt);
            prop_assert!((0.0..=1.0).contains(&a), "{d:?} cdf({t})={a}");
            prop_assert!(b + 1e-12 >= a, "{d:?} not monotone at {t}");
            prop_assert!((d.survival(t) - (1.0 - a)).abs() < 1e-12);
        }
    }

    /// L(0) = 1 and L is non-increasing in s for every law.
    #[test]
    fn laplace_is_completely_monotone_at_grid(mean in 0.05f64..10.0, xi in 0.0f64..0.9) {
        for d in all_continuous(mean, xi) {
            let mut prev = d.laplace(0.0);
            prop_assert!((prev - 1.0).abs() < 1e-9, "{d:?} L(0)={prev}");
            for s in [0.01, 0.1, 1.0, 10.0, 100.0] {
                let l = d.laplace(s / mean);
                prop_assert!(l <= prev + 1e-9, "{d:?} L not decreasing at s={s}");
                prop_assert!((0.0..=1.0).contains(&l));
                prev = l;
            }
        }
    }

    /// (1 − L(s))/s → E[T] as s → 0 (first-moment identity), for the
    /// closed-form transforms.
    #[test]
    fn laplace_first_moment(mean in 0.1f64..10.0) {
        let laws: Vec<Box<dyn Continuous>> = vec![
            Box::new(Exponential::with_mean(mean).unwrap()),
            Box::new(Uniform::with_mean(mean).unwrap()),
            Box::new(Gamma::erlang(4, mean).unwrap()),
            Box::new(Hyperexponential::with_mean_scv(mean, 2.5).unwrap()),
            Box::new(Deterministic::new(mean).unwrap()),
        ];
        let s = 1e-6 / mean;
        for d in laws {
            let est = (1.0 - d.laplace(s)) / s;
            prop_assert!((est - mean).abs() < 1e-3 * mean, "{d:?} est={est} mean={mean}");
        }
    }

    /// quantile ∘ cdf ≈ identity on probabilities.
    #[test]
    fn quantile_inverts_cdf(mean in 0.1f64..10.0, xi in 0.0f64..0.9, p in 0.01f64..0.99) {
        for d in all_continuous(mean, xi) {
            let t = d.quantile(p);
            let back = d.cdf(t);
            // Deterministic is a step function: cdf(quantile(p)) = 1.
            if t == d.mean() && d.variance() == 0.0 {
                prop_assert_eq!(back, 1.0);
            } else {
                prop_assert!((back - p).abs() < 1e-6, "{d:?} p={p} back={back}");
            }
        }
    }

    /// Sampled values are non-negative and respect the support.
    #[test]
    fn samples_nonnegative(mean in 0.1f64..10.0, xi in 0.0f64..0.9, seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for d in all_continuous(mean, xi) {
            for _ in 0..50 {
                let x = d.sample(&mut rng);
                prop_assert!(x >= 0.0 && x.is_finite(), "{d:?} sampled {x}");
            }
        }
    }

    /// Geometric batch: mean identity E[X] = 1/(1−q) and pmf telescopes.
    #[test]
    fn geometric_batch_laws(q in 0.0f64..0.95) {
        let x = GeometricBatch::new(q).unwrap();
        prop_assert!((x.mean() - 1.0 / (1.0 - q)).abs() < 1e-12);
        let head: f64 = (1..=64).map(|k| x.pmf(k)).sum();
        prop_assert!((head - x.cdf(64)).abs() < 1e-9);
    }

    /// Binomial mean and support bounds hold across samplers.
    #[test]
    fn binomial_sampler_support(n in 1u64..5000, p in 0.0f64..1.0, seed in 0u64..100) {
        let b = Binomial::new(n, p).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let k = b.sample(&mut rng);
            prop_assert!(k <= n);
        }
    }

    /// Zipf pmf is non-increasing in rank.
    #[test]
    fn zipf_pmf_monotone(n in 2u64..500, s in 0.0f64..2.0) {
        let z = Zipf::new(n, s).unwrap();
        for k in 1..n.min(50) {
            prop_assert!(z.pmf(k) + 1e-15 >= z.pmf(k + 1));
        }
    }

    /// Multinomial counts conserve the total and stay within categories.
    #[test]
    fn multinomial_conserves(n in 0u64..10_000, seed in 0u64..100) {
        let probs = [0.4, 0.3, 0.2, 0.1];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let c = memlat_dist::multinomial_counts(n, &probs, &mut rng).unwrap();
        prop_assert_eq!(c.len(), 4);
        prop_assert_eq!(c.iter().sum::<u64>(), n);
    }
}
