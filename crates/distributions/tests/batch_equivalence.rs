//! Bit-identity of the block `fill`/`fill_u64` kernels.
//!
//! For every law: filling a block must (a) produce exactly the samples
//! that `N` successive scalar draws from the same RNG state would, bit
//! for bit, and (b) leave the RNG in exactly the state those scalar
//! draws would — so a hot loop can switch between scalar and block
//! sampling mid-stream without perturbing anything downstream.

use memlat_dist::{
    Deterministic, Exponential, Gamma, GapLaw, GeneralizedPareto, GeometricBatch, Hyperexponential,
    Uniform, Zipf,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Asserts `fill` ≡ N scalar draws (values and final RNG state).
fn assert_fill_matches_scalar(
    seed: u64,
    n: usize,
    scalar: impl Fn(&mut StdRng) -> f64,
    fill: impl Fn(&mut StdRng, &mut [f64]),
) {
    let mut scalar_rng = StdRng::seed_from_u64(seed);
    let mut block_rng = scalar_rng.clone();
    let expect: Vec<f64> = (0..n).map(|_| scalar(&mut scalar_rng)).collect();
    let mut got = vec![0.0; n];
    fill(&mut block_rng, &mut got);
    for (i, (e, g)) in expect.iter().zip(&got).enumerate() {
        assert_eq!(e.to_bits(), g.to_bits(), "sample {i} differs");
    }
    // Same stream position afterwards.
    assert_eq!(scalar_rng.next_u64(), block_rng.next_u64());
}

/// The discrete (`u64`) twin of [`assert_fill_matches_scalar`].
fn assert_fill_u64_matches_scalar(
    seed: u64,
    n: usize,
    scalar: impl Fn(&mut StdRng) -> u64,
    fill: impl Fn(&mut StdRng, &mut [u64]),
) {
    let mut scalar_rng = StdRng::seed_from_u64(seed);
    let mut block_rng = scalar_rng.clone();
    let expect: Vec<u64> = (0..n).map(|_| scalar(&mut scalar_rng)).collect();
    let mut got = vec![0u64; n];
    fill(&mut block_rng, &mut got);
    assert_eq!(expect, got);
    assert_eq!(scalar_rng.next_u64(), block_rng.next_u64());
}

proptest! {
    #[test]
    fn exponential_fill(seed in 0u64..1_000_000, n in 0usize..600, rate in 1e-3f64..1e6) {
        let d = Exponential::new(rate).unwrap();
        assert_fill_matches_scalar(seed, n, |r| d.sample_with(r), |r, out| d.fill(r, out));
    }

    #[test]
    fn gpd_fill(seed in 0u64..1_000_000, n in 0usize..600, xi in 0.0f64..0.95, sigma in 1e-6f64..1e3) {
        let d = GeneralizedPareto::new(xi, sigma).unwrap();
        assert_fill_matches_scalar(seed, n, |r| d.sample_with(r), |r, out| d.fill(r, out));
    }

    #[test]
    fn gpd_fill_xi_zero_branch(seed in 0u64..1_000_000, n in 0usize..600) {
        // The exponential-limit branch, explicitly.
        let d = GeneralizedPareto::new(0.0, 2.5e-5).unwrap();
        assert_fill_matches_scalar(seed, n, |r| d.sample_with(r), |r, out| d.fill(r, out));
    }

    #[test]
    fn uniform_fill(seed in 0u64..1_000_000, n in 0usize..600, lo in 0.0f64..1.0, span in 1e-6f64..1e3) {
        let d = Uniform::new(lo, lo + span).unwrap();
        assert_fill_matches_scalar(seed, n, |r| d.sample_with(r), |r, out| d.fill(r, out));
    }

    #[test]
    fn deterministic_fill(seed in 0u64..1_000_000, n in 0usize..600, v in 0.0f64..1e3) {
        let d = Deterministic::new(v).unwrap();
        assert_fill_matches_scalar(seed, n, |r| d.sample_with(r), |r, out| d.fill(r, out));
    }

    #[test]
    fn hyperexp_fill(seed in 0u64..1_000_000, n in 0usize..400, mean in 1e-6f64..1.0, scv in 1.01f64..20.0) {
        let d = Hyperexponential::with_mean_scv(mean, scv).unwrap();
        assert_fill_matches_scalar(seed, n, |r| d.sample_with(r), |r, out| d.fill(r, out));
    }

    #[test]
    fn gamma_fill(seed in 0u64..1_000_000, n in 0usize..400, shape in 0.1f64..20.0, rate in 1e-3f64..1e3) {
        // Covers both the Marsaglia–Tsang (shape ≥ 1) and boost (< 1) paths.
        let d = Gamma::new(shape, rate).unwrap();
        assert_fill_matches_scalar(seed, n, |r| d.sample_with(r), |r, out| d.fill(r, out));
    }

    #[test]
    fn geometric_fill(seed in 0u64..1_000_000, n in 0usize..600, q in 0.0f64..0.99) {
        let d = GeometricBatch::new(q).unwrap();
        assert_fill_u64_matches_scalar(seed, n, |r| d.sample_with(r), |r, out| d.fill_u64(r, out));
    }

    #[test]
    fn geometric_fill_q_zero_consumes_no_draws(seed in 0u64..1_000_000, n in 0usize..600) {
        // The n = 1 fast path: no RNG state may be touched at all.
        let d = GeometricBatch::new(0.0).unwrap();
        assert_fill_u64_matches_scalar(seed, n, |r| d.sample_with(r), |r, out| d.fill_u64(r, out));
        let mut rng = StdRng::seed_from_u64(seed);
        let before = rng.clone().next_u64();
        let mut out = vec![0u64; n];
        d.fill_u64(&mut rng, &mut out);
        assert!(out.iter().all(|&x| x == 1));
        assert_eq!(rng.next_u64(), before);
    }

    #[test]
    fn zipf_fill(seed in 0u64..1_000_000, n in 0usize..300, ranks in 1u64..100_000, s in 0.0f64..1.5) {
        let d = Zipf::new(ranks, s).unwrap();
        assert_fill_u64_matches_scalar(seed, n, |r| d.sample_with(r), |r, out| d.fill_u64(r, out));
    }

    #[test]
    fn gap_law_fill_every_variant(seed in 0u64..1_000_000, n in 0usize..400) {
        let laws = [
            GapLaw::from(Exponential::new(1_000.0).unwrap()),
            GapLaw::from(GeneralizedPareto::facebook(0.15, 56_250.0).unwrap()),
            GapLaw::from(Deterministic::new(1e-3).unwrap()),
            GapLaw::from(Gamma::erlang(4, 1e-3).unwrap()),
            GapLaw::from(Uniform::with_mean(1e-3).unwrap()),
            GapLaw::from(Hyperexponential::with_mean_scv(1e-3, 4.0).unwrap()),
        ];
        for law in &laws {
            assert_fill_matches_scalar(seed, n, |r| law.sample_with(r), |r, out| law.fill(r, out));
        }
    }
}
