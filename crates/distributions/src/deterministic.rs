//! The deterministic (degenerate) distribution.

use rand::RngCore;

use crate::{Continuous, ParamError};

/// A point mass at `value ≥ 0`.
///
/// Models perfectly paced arrivals (the `D/M/1` baseline — the least bursty
/// arrival pattern, useful as the opposite pole from the heavy-tailed
/// Facebook trace) and constant network delays.
///
/// # Examples
///
/// ```
/// use memlat_dist::{Continuous, Deterministic};
/// # fn main() -> Result<(), memlat_dist::ParamError> {
/// let d = Deterministic::new(16e-6)?;
/// assert_eq!(d.variance(), 0.0);
/// assert!((d.laplace(1000.0) - (-16e-3f64).exp()).abs() < 1e-15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates a point mass at `value`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `value` is finite and non-negative.
    pub fn new(value: f64) -> Result<Self, ParamError> {
        if !(value.is_finite() && value >= 0.0) {
            return Err(ParamError::new(format!(
                "deterministic value must be finite and non-negative, got {value}"
            )));
        }
        Ok(Self { value })
    }

    /// The constant value.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl Deterministic {
    /// Draws one sample through a concrete RNG type — the monomorphized
    /// twin of [`Continuous::sample`] (no RNG state is consumed).
    #[inline]
    pub fn sample_with<R: RngCore + ?Sized>(&self, _rng: &mut R) -> f64 {
        self.value
    }

    /// Fills `out` with the constant — bit-identical to `out.len()`
    /// [`Self::sample_with`] calls (no RNG state is consumed).
    pub fn fill<R: RngCore + ?Sized>(&self, _rng: &mut R, out: &mut [f64]) {
        out.fill(self.value);
    }
}

impl Continuous for Deterministic {
    fn cdf(&self, t: f64) -> f64 {
        if t >= self.value {
            1.0
        } else {
            0.0
        }
    }

    fn mean(&self) -> f64 {
        self.value
    }

    fn variance(&self) -> f64 {
        0.0
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.sample_with(rng)
    }

    fn laplace(&self, s: f64) -> f64 {
        assert!(s >= 0.0, "laplace transform requires s >= 0, got {s}");
        (-s * self.value).exp()
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&p),
            "quantile requires p in [0,1), got {p}"
        );
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_value() {
        assert!(Deterministic::new(-1.0).is_err());
        assert!(Deterministic::new(f64::NAN).is_err());
    }

    #[test]
    fn step_cdf() {
        let d = Deterministic::new(2.0).unwrap();
        assert_eq!(d.cdf(1.999), 0.0);
        assert_eq!(d.cdf(2.0), 1.0);
        assert_eq!(d.cdf(3.0), 1.0);
    }

    #[test]
    fn sampling_is_constant() {
        let d = Deterministic::new(0.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 0.5);
        }
    }

    #[test]
    fn zero_point_mass() {
        let d = Deterministic::new(0.0).unwrap();
        assert_eq!(d.cdf(0.0), 1.0);
        assert_eq!(d.laplace(5.0), 1.0);
    }
}
