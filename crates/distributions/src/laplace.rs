//! Numeric Laplace–Stieltjes transforms.
//!
//! For a non-negative random variable `T` with CDF `F`, integration by
//! parts gives
//!
//! ```text
//! L(s) = E[e^{-sT}] = s ∫₀^∞ e^{-st} F(t) dt        (s > 0)
//! ```
//!
//! The integrand has two characteristic scales: `F` rises on the
//! distribution's own time scale (its mean), while the kernel `e^{-st}`
//! decays on `1/s`. When `s·mean ≪ 1` these differ by many orders of
//! magnitude and any fixed-grid rule misses one of them. We therefore
//! integrate over **octave-spaced panels** anchored at the distribution
//! scale — `t ∈ [0, m·2⁻²⁶], [m·2⁻²⁶, m·2⁻²⁵], … up to 45/s` — each
//! refined adaptively. Every octave sees a smooth, boundedly-varying
//! integrand, the panel count is ≤ ~90 regardless of `s`, and the
//! truncated tail is below `e^{-45} ≈ 3e-20`.

use memlat_numerics::integrate::adaptive_simpson;

/// Truncation point of the `e^{-st}` kernel in units of `1/s`.
const U_MAX: f64 = 45.0;

/// Computes `L(s) = E[e^{-sT}]` from the CDF of a non-negative random
/// variable, given a characteristic `scale` of the distribution (its
/// mean; any value within a few orders of magnitude works).
///
/// Accuracy is ~1e-12 relative for smooth CDFs; validated against the
/// closed forms of the exponential, Erlang, uniform and hyperexponential
/// laws in this crate's tests.
///
/// # Panics
///
/// Panics if `s < 0` (the queueing solvers only evaluate the transform
/// on the non-negative real axis).
///
/// # Examples
///
/// ```
/// use memlat_dist::laplace::numeric_laplace;
/// // Exponential(λ=2): L(s) = 2/(2+s).
/// let cdf = |t: f64| 1.0 - (-2.0 * t).exp();
/// assert!((numeric_laplace(&cdf, 3.0, 0.5) - 0.4).abs() < 1e-11);
/// ```
pub fn numeric_laplace(cdf: &dyn Fn(f64) -> f64, s: f64, scale: f64) -> f64 {
    assert!(s >= 0.0, "laplace transform requires s >= 0, got {s}");
    if s == 0.0 {
        return 1.0;
    }
    let scale = if scale.is_finite() && scale > 0.0 {
        scale
    } else {
        1.0 / s
    };
    let t_max = U_MAX / s;
    let f = |t: f64| s * (-s * t).exp() * cdf(t);

    let mut acc = memlat_numerics::KahanSum::new();
    let mut lo = 0.0f64;
    let mut hi = (scale * 2f64.powi(-26)).min(t_max);
    loop {
        // Adaptive within each octave: smooth octaves terminate at the
        // first level; octaves containing a kink (e.g. a uniform CDF's
        // endpoints) refine locally.
        acc.add(adaptive_simpson(f, lo, hi, 1e-13));
        if hi >= t_max {
            break;
        }
        lo = hi;
        hi = (hi * 2.0).min(t_max);
    }
    // Tail beyond t_max: kernel mass ≤ e^{-U_MAX}, F ≤ 1.
    acc.add((-U_MAX).exp() * cdf(t_max));
    acc.sum().clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s_zero_is_one() {
        assert_eq!(numeric_laplace(&|t| 1.0 - (-t).exp(), 0.0, 1.0), 1.0);
    }

    #[test]
    fn exponential_closed_form_across_scales() {
        let lam = 5.0;
        let cdf = move |t: f64| 1.0 - (-lam * t).exp();
        for s in [1e-4, 0.01, 0.1, 1.0, 10.0, 1e3, 1e5, 1e8] {
            let num = numeric_laplace(&cdf, s, 1.0 / lam);
            let exact = lam / (lam + s);
            assert!(
                (num - exact).abs() < 1e-8 * exact + 1e-14,
                "s={s}: {num} vs {exact}"
            );
        }
    }

    #[test]
    fn robust_to_bad_scale_hint() {
        // Even a scale hint off by 10³ stays accurate (octave panels
        // bracket both scales).
        let lam = 5.0;
        let cdf = move |t: f64| 1.0 - (-lam * t).exp();
        for hint in [2e-4, 0.2, 200.0] {
            let num = numeric_laplace(&cdf, 3.0, hint);
            assert!((num - 0.625).abs() < 1e-9, "hint={hint}: {num}");
        }
        // Non-finite hints fall back gracefully.
        let num = numeric_laplace(&cdf, 3.0, f64::NAN);
        assert!((num - 0.625).abs() < 1e-9);
    }

    #[test]
    fn deterministic_closed_form() {
        // Point mass: F is a step; L(s) = e^{-sd}. A step is the hardest
        // case for any quadrature; the octave grid still localizes it.
        let d = 0.37;
        let cdf = move |t: f64| if t >= d { 1.0 } else { 0.0 };
        for s in [0.5, 1.0, 4.0] {
            let num = numeric_laplace(&cdf, s, d);
            let exact = (-s * d).exp();
            assert!((num - exact).abs() < 1e-3, "s={s}: {num} vs {exact}");
        }
    }

    #[test]
    fn uniform_closed_form() {
        // U(0, b): L(s) = (1 - e^{-sb})/(sb).
        let b = 2.0;
        let cdf = move |t: f64| (t / b).clamp(0.0, 1.0);
        for s in [0.001, 0.1, 1.0, 7.0, 1e4] {
            let num = numeric_laplace(&cdf, s, b / 2.0);
            let exact = (1.0 - (-s * b).exp()) / (s * b);
            assert!((num - exact).abs() < 1e-10, "s={s}");
        }
    }

    #[test]
    fn heavy_tail_small_s_first_moment() {
        // GPD ξ=0.15 with mean 1: (1 − L(s))/s → 1 as s → 0 — the regime
        // that broke fixed-grid quadrature.
        let xi = 0.15f64;
        let sigma = 1.0 - xi;
        let cdf = move |t: f64| {
            if t <= 0.0 {
                0.0
            } else {
                1.0 - (1.0 + xi * t / sigma).powf(-1.0 / xi)
            }
        };
        // (1 − L(s))/s = m₁ − s·m₂/2 + O(s²); for this law m₂ = 2.428,
        // so compare against the two-term expansion, not m₁ alone.
        let m2 = 2.0 * sigma * sigma / ((1.0 - xi) * (1.0 - 2.0 * xi));
        for s in [1e-6, 1e-4, 1e-2] {
            let l = numeric_laplace(&cdf, s, 1.0);
            let mean_est = (1.0 - l) / s;
            let expansion = 1.0 - s * m2 / 2.0;
            assert!(
                (mean_est - expansion).abs() < 3e-4,
                "s={s}: mean est {mean_est} vs expansion {expansion}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "requires s >= 0")]
    fn negative_s_panics() {
        let _ = numeric_laplace(&|_| 1.0, -1.0, 1.0);
    }

    #[test]
    fn result_is_clamped_probability() {
        let bad = |_t: f64| 1.5;
        let v = numeric_laplace(&bad, 1.0, 1.0);
        assert!((0.0..=1.0).contains(&v));
    }
}
