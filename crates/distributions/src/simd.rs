//! Deterministic transcendental kernels and their AVX2 block twins.
//!
//! The block-batched hot path (PR 4) stages raw RNG bits into SoA lanes and
//! then transforms whole slices. Profiling showed the transforms themselves —
//! dominated by libm `ln`/`powf` calls — as the remaining bottleneck. libm
//! calls cannot be vectorized without changing results, because a 4-lane SIMD
//! polynomial will not reproduce libm's table-driven answers bit for bit.
//!
//! This module removes that coupling: both the scalar *and* the SIMD samplers
//! share one deterministic software implementation of `ln` and `exp`
//! ([`dln`]/[`dexp`], ports of the classic fdlibm kernels, branch-free over
//! our domain). Every AVX2 lane operation used here (`add/sub/mul/div/sqrt`,
//! compares, integer bit ops; **no FMA**) is IEEE-754 identical to its scalar
//! counterpart, so the vector kernels are bit-identical to the scalar
//! reference *by construction* — the differential suites then prove it
//! empirically.
//!
//! Since the speculative block arrival pipeline landed, the gap laws are
//! lane-shaped too: `exp_from_bits`/`exp_scale_from_bits`/`gp_from_bits`
//! transform banked raw gap draws as whole slices, so the GP power law now
//! runs through `dexp(-ξ·dln u)` everywhere (PR 8's `powf`-stays-serial
//! negative result no longer applies — the serial recurrence it was
//! measured on is gone).
//!
//! Dispatch is resolved once at first use: x86-64 with AVX2 detected at
//! runtime takes the vector path unless `MEMLAT_NO_SIMD` is set in the
//! environment (or [`set_forced_scalar`] was called — the in-process test
//! hook). Everything else falls back to the scalar reference. Because the two
//! paths agree bitwise, toggling mid-run is harmless.
//!
//! This is the crate's single `unsafe` island (raw SIMD intrinsics +
//! `#[target_feature]` calls); the rest of the workspace stays
//! `deny(unsafe_code)`.
#![allow(unsafe_code)]
// The fdlibm constants below are hex-exact decimal expansions of the
// reference implementation's bit patterns; "trimming the excessive
// precision" or substituting `std::f64::consts` values would change the
// bits and break scalar↔SIMD (and cross-platform) bit-identity.
#![allow(clippy::excessive_precision, clippy::approx_constant)]

use std::sync::atomic::{AtomicU8, Ordering};

use crate::open_unit_from_bits;

// ---------------------------------------------------------------------------
// fdlibm constants (e_log.c / e_exp.c, Sun Microsystems; public reference
// implementation). Kept in full hex-exact decimal form.
// ---------------------------------------------------------------------------

const LN2_HI: f64 = 6.931_471_803_691_238_164_90e-01;
const LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;

const LG1: f64 = 6.666_666_666_666_735_130e-01;
const LG2: f64 = 3.999_999_999_940_941_908e-01;
const LG3: f64 = 2.857_142_874_366_239_149e-01;
const LG4: f64 = 2.222_219_843_214_978_396e-01;
const LG5: f64 = 1.818_357_216_161_805_012e-01;
const LG6: f64 = 1.531_383_769_920_937_332e-01;
const LG7: f64 = 1.479_819_860_511_658_591e-01;

const INV_LN2: f64 = 1.442_695_040_888_963_387_00e+00;

const P1: f64 = 1.666_666_666_666_660_190_37e-01;
const P2: f64 = -2.777_777_777_701_559_338_42e-03;
const P3: f64 = 6.613_756_321_437_934_361_17e-05;
const P4: f64 = -1.653_390_220_546_525_153_90e-06;
const P5: f64 = 4.138_136_797_057_238_460_39e-08;

// ---------------------------------------------------------------------------
// Scalar reference kernels
// ---------------------------------------------------------------------------

/// Deterministic natural logarithm (fdlibm `e_log` port, branch-free).
///
/// Valid for normal, positive, finite `x`; this is exactly the domain the
/// samplers feed it (`open_unit` variates and their complements). Accuracy is
/// fdlibm-class (< 1 ulp over the sampler domain; the unit tests assert ≤ 4
/// ulps against libm). Unlike `f64::ln` this function's results are
/// defined by this source, not by the platform libm, so the SIMD twin can
/// reproduce them lane for lane.
#[inline]
#[must_use]
pub fn dln(x: f64) -> f64 {
    debug_assert!(
        x >= f64::MIN_POSITIVE && x.is_finite(),
        "dln domain is positive normal floats, got {x}"
    );
    let bits = x.to_bits() as i64;
    let hx = bits >> 32;
    let mut k = (hx >> 20) - 1023;
    let hxm = hx & 0x000f_ffff;
    // Round the mantissa split at sqrt(2): i = 0x100000 iff mantissa >=
    // 0x6a09c..., placing the normalized argument in [sqrt(2)/2, sqrt(2)).
    let i = (hxm + 0x95f64) & 0x0010_0000;
    let norm_bits = (((hxm | (i ^ 0x3ff0_0000)) << 32) | (bits & 0xffff_ffff)) as u64;
    let norm = f64::from_bits(norm_bits);
    k += i >> 20;
    let dk = k as f64;
    let f = norm - 1.0;
    let s = f / (2.0 + f);
    let z = s * s;
    let w = z * z;
    let t1 = w * (LG2 + w * (LG4 + w * LG6));
    let t2 = z * (LG1 + w * (LG3 + w * (LG5 + w * LG7)));
    let r = t1 + t2;
    let hfsq = 0.5 * f * f;
    dk * LN2_HI - ((hfsq - (s * (hfsq + r) + dk * LN2_LO)) - f)
}

/// Deterministic exponential (single-path fdlibm `e_exp` variant).
///
/// Valid for `|x| < 700` (results stay normal; the samplers stay far inside
/// this). Accuracy is a few ulps against libm — asserted by the unit tests —
/// and, like [`dln`], the answer is defined by this source so the SIMD twin
/// matches it bit for bit.
#[inline]
#[must_use]
pub fn dexp(x: f64) -> f64 {
    debug_assert!(x.abs() < 700.0, "dexp domain is |x| < 700, got {x}");
    // Argument reduction: x = k*ln2 + r, |r| <= ln2/2, k rounded to nearest
    // via the add-half-then-truncate idiom (truncation matches `as i32`).
    let k = (INV_LN2 * x + f64::copysign(0.5, x)) as i32;
    let t = f64::from(k);
    let hi = x - t * LN2_HI;
    let lo = t * LN2_LO;
    let r = hi - lo;
    let rr = r * r;
    let c = r - rr * (P1 + rr * (P2 + rr * (P3 + rr * (P4 + rr * P5))));
    let y = 1.0 - ((lo - (r * c) / (2.0 - c)) - hi);
    // Scale by 2^k with an exact exponent-field add (y is in ~[0.7, 1.42],
    // k is small, so this cannot overflow into NaN/Inf territory).
    f64::from_bits((y.to_bits() as i64 + (i64::from(k) << 52)) as u64)
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

const MODE_UNINIT: u8 = 0;
const MODE_SCALAR: u8 = 1;
const MODE_AVX2: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

#[inline]
fn mode() -> u8 {
    match MODE.load(Ordering::Relaxed) {
        MODE_UNINIT => init_mode(),
        m => m,
    }
}

#[cold]
fn init_mode() -> u8 {
    let env_scalar = std::env::var("MEMLAT_NO_SIMD")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    let m = if env_scalar { MODE_SCALAR } else { detect() };
    MODE.store(m, Ordering::Relaxed);
    m
}

#[cfg(target_arch = "x86_64")]
fn detect() -> u8 {
    if std::is_x86_feature_detected!("avx2") {
        MODE_AVX2
    } else {
        MODE_SCALAR
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> u8 {
    MODE_SCALAR
}

/// Returns true when the block kernels will take the AVX2 path.
#[must_use]
pub fn simd_active() -> bool {
    mode() == MODE_AVX2
}

/// Forces (or releases) the scalar fallback — the in-process twin of the
/// `MEMLAT_NO_SIMD` environment override, used by the differential tests to
/// compare both paths inside one process.
///
/// Passing `false` re-runs detection (honoring the environment variable)
/// at the next kernel call. Because the two paths are bit-identical,
/// toggling while other threads are mid-kernel is benign.
pub fn set_forced_scalar(force: bool) {
    let m = if force { MODE_SCALAR } else { MODE_UNINIT };
    MODE.store(m, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Block kernels (public entry points; scalar reference + AVX2 dispatch)
// ---------------------------------------------------------------------------

/// Appends `-dln(open_unit_from_bits(b)) / rate` for every `b` in `bits`
/// onto `out` — the exponential service lane of the block hot path.
pub fn exp_from_bits(bits: &[u64], rate: f64, out: &mut Vec<f64>) {
    let start = out.len();
    out.resize(start + bits.len(), 0.0);
    let dst = &mut out[start..];
    #[cfg(target_arch = "x86_64")]
    if mode() == MODE_AVX2 {
        // SAFETY: MODE_AVX2 is only ever stored after
        // `is_x86_feature_detected!("avx2")` returned true.
        unsafe { avx2::exp_from_bits(bits, rate, dst) };
        return;
    }
    exp_from_bits_scalar(bits, rate, dst);
}

fn exp_from_bits_scalar(bits: &[u64], rate: f64, dst: &mut [f64]) {
    for (x, &b) in dst.iter_mut().zip(bits) {
        *x = -dln(open_unit_from_bits(b)) / rate;
    }
}

/// Transforms staged `(0, 1)` uniforms into `Exp(rate)` samples in place:
/// `x <- -dln(x) / rate`.
pub fn exp_transform(xs: &mut [f64], rate: f64) {
    #[cfg(target_arch = "x86_64")]
    if mode() == MODE_AVX2 {
        // SAFETY: AVX2 presence established at dispatch init.
        unsafe { avx2::exp_transform(xs, rate) };
        return;
    }
    exp_transform_scalar(xs, rate);
}

fn exp_transform_scalar(xs: &mut [f64], rate: f64) {
    for x in xs.iter_mut() {
        *x = -dln(*x) / rate;
    }
}

/// Appends `-sigma * dln(open_unit_from_bits(b))` for every `b` in `bits`
/// onto `out` — the GP `ξ = 0` exponential-limit gap lane of the
/// speculative arrival pipeline.
pub fn exp_scale_from_bits(bits: &[u64], sigma: f64, out: &mut Vec<f64>) {
    let start = out.len();
    out.resize(start + bits.len(), 0.0);
    let dst = &mut out[start..];
    #[cfg(target_arch = "x86_64")]
    if mode() == MODE_AVX2 {
        // SAFETY: MODE_AVX2 is only ever stored after
        // `is_x86_feature_detected!("avx2")` returned true.
        unsafe { avx2::exp_scale_from_bits(bits, sigma, dst) };
        return;
    }
    exp_scale_from_bits_scalar(bits, sigma, dst);
}

fn exp_scale_from_bits_scalar(bits: &[u64], sigma: f64, dst: &mut [f64]) {
    for (x, &b) in dst.iter_mut().zip(bits) {
        *x = -sigma * dln(open_unit_from_bits(b));
    }
}

/// Appends `(σ/ξ)(dexp(-ξ · dln(u)) − 1)` for every raw draw in `bits`
/// onto `out` — the GP `ξ > 0` gap lane of the speculative arrival
/// pipeline, bit-identical to `GeneralizedPareto::sample_with` fed the
/// same bits.
pub fn gp_from_bits(bits: &[u64], xi: f64, sigma_over_xi: f64, out: &mut Vec<f64>) {
    let start = out.len();
    out.resize(start + bits.len(), 0.0);
    let dst = &mut out[start..];
    #[cfg(target_arch = "x86_64")]
    if mode() == MODE_AVX2 {
        // SAFETY: AVX2 presence established at dispatch init.
        unsafe { avx2::gp_from_bits(bits, xi, sigma_over_xi, dst) };
        return;
    }
    gp_from_bits_scalar(bits, xi, sigma_over_xi, dst);
}

fn gp_from_bits_scalar(bits: &[u64], xi: f64, sigma_over_xi: f64, dst: &mut [f64]) {
    for (x, &b) in dst.iter_mut().zip(bits) {
        *x = sigma_over_xi * (dexp(-xi * dln(open_unit_from_bits(b))) - 1.0);
    }
}

/// Transforms staged `(0, 1)` uniforms into Generalized Pareto samples in
/// place — the `ξ > 0` inverse CDF `x <- (σ/ξ)(u^{-ξ} − 1)`, computed as
/// `dexp(-ξ · dln(u))` so the power law shares the deterministic kernels.
pub fn gp_transform(xs: &mut [f64], xi: f64, sigma_over_xi: f64) {
    #[cfg(target_arch = "x86_64")]
    if mode() == MODE_AVX2 {
        // SAFETY: AVX2 presence established at dispatch init.
        unsafe { avx2::gp_transform(xs, xi, sigma_over_xi) };
        return;
    }
    gp_transform_scalar(xs, xi, sigma_over_xi);
}

fn gp_transform_scalar(xs: &mut [f64], xi: f64, sigma_over_xi: f64) {
    for x in xs.iter_mut() {
        *x = sigma_over_xi * (dexp(-xi * dln(*x)) - 1.0);
    }
}

/// Transforms staged `Exp(1)`-style uniforms into `-sigma * dln(u)` in
/// place — the GP `ξ = 0` exponential limit (scale form).
pub fn exp_scale_transform(xs: &mut [f64], sigma: f64) {
    #[cfg(target_arch = "x86_64")]
    if mode() == MODE_AVX2 {
        // SAFETY: AVX2 presence established at dispatch init.
        unsafe { avx2::exp_scale_transform(xs, sigma) };
        return;
    }
    exp_scale_transform_scalar(xs, sigma);
}

fn exp_scale_transform_scalar(xs: &mut [f64], sigma: f64) {
    for x in xs.iter_mut() {
        *x = -sigma * dln(*x);
    }
}

/// Transforms staged raw RNG draws into geometric batch sizes in place,
/// reproducing `GeometricBatch::sample_with` bit for bit (including the
/// compare-only `n = 1` fast path). Requires `q > 0` (`ln_q = ln(q)`).
pub fn geometric_transform(vals: &mut [u64], q: f64, ln_q: f64) {
    #[cfg(target_arch = "x86_64")]
    if mode() == MODE_AVX2 {
        // SAFETY: AVX2 presence established at dispatch init.
        unsafe { avx2::geometric_transform(vals, q, ln_q) };
        return;
    }
    geometric_transform_scalar(vals, q, ln_q);
}

fn geometric_transform_scalar(vals: &mut [u64], q: f64, ln_q: f64) {
    for b in vals.iter_mut() {
        let u = open_unit_from_bits(*b);
        *b = if u <= 1.0 - q {
            1
        } else {
            let n = (dln(1.0 - u) / ln_q).ceil();
            (n as u64).max(1)
        };
    }
}

/// Writes `dln(x) / ln_gamma` for every `x` in `xs` into `dst` — the
/// log-bin lane of the quantile sketch's block push. Elements outside
/// `[lo, f64::MAX]` (underflow, infinities, NaN) are substituted with a
/// placeholder of `1.0` before the log so the lane stays inside
/// [`dln`]'s domain; callers route those elements off the bin path by
/// re-testing `x`, exactly as the scalar per-sample push does.
///
/// # Panics
///
/// Panics if `xs` and `dst` differ in length.
pub fn sketch_bins(xs: &[f64], ln_gamma: f64, lo: f64, dst: &mut [f64]) {
    assert_eq!(xs.len(), dst.len(), "sketch_bins slices must match");
    #[cfg(target_arch = "x86_64")]
    if mode() == MODE_AVX2 {
        // SAFETY: AVX2 presence established at dispatch init.
        unsafe { avx2::sketch_bins(xs, ln_gamma, lo, dst) };
        return;
    }
    sketch_bins_scalar(xs, ln_gamma, lo, dst);
}

fn sketch_bins_scalar(xs: &[f64], ln_gamma: f64, lo: f64, dst: &mut [f64]) {
    for (d, &x) in dst.iter_mut().zip(xs) {
        let x = if x >= lo && x <= f64::MAX { x } else { 1.0 };
        *d = dln(x) / ln_gamma;
    }
}

/// Bulk Vose alias-table lookup: for each raw draw `b`, appends the sampled
/// index (`i` or `alias[i]`) onto `out`, bit-identical to the scalar
/// per-draw walk. `prob` and `alias` must have equal, non-zero length.
///
/// # Panics
///
/// Panics if `prob` and `alias` differ in length or are empty.
pub fn alias_from_bits(prob: &[f64], alias: &[u32], bits: &[u64], out: &mut Vec<u64>) {
    assert_eq!(prob.len(), alias.len(), "alias table slices must match");
    assert!(!prob.is_empty(), "alias table must be non-empty");
    let start = out.len();
    out.resize(start + bits.len(), 0);
    let dst = &mut out[start..];
    #[cfg(target_arch = "x86_64")]
    if mode() == MODE_AVX2 && prob.len() <= i32::MAX as usize {
        // SAFETY: AVX2 presence established at dispatch init; gather
        // indices are clamped to `prob.len() - 1` which fits i32.
        unsafe { avx2::alias_from_bits(prob, alias, bits, dst) };
        return;
    }
    alias_from_bits_scalar(prob, alias, bits, dst);
}

fn alias_from_bits_scalar(prob: &[f64], alias: &[u32], bits: &[u64], dst: &mut [u64]) {
    let n = prob.len();
    for (o, &b) in dst.iter_mut().zip(bits) {
        let x = open_unit_from_bits(b) * n as f64;
        let i = (x as usize).min(n - 1);
        let v = x - i as f64;
        *o = if v < prob[i] {
            i as u64
        } else {
            u64::from(alias[i])
        };
    }
}

// ---------------------------------------------------------------------------
// AVX2 twins
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! 4-lane AVX2 implementations. Every lane op is elementwise IEEE-754
    //! identical to the scalar reference (loads, `add/sub/mul/div`, integer
    //! shifts/masks, truncating converts, `round` with explicit mode, and
    //! gathers; no FMA anywhere), so these produce the same bits as the
    //! scalar functions above — verified by the `kernels_match_scalar` test
    //! battery and the cross-crate differential suites.

    use super::{INV_LN2, LG1, LG2, LG3, LG4, LG5, LG6, LG7, LN2_HI, LN2_LO, P1, P2, P3, P4, P5};
    use core::arch::x86_64::*;

    /// Exactly `(b >> 11) as f64 + 0.5) * 2^-53` per lane, i.e.
    /// `open_unit_from_bits`. The u64 -> f64 convert splits into 21 high +
    /// 32 low bits, each converted exactly via the 2^52 magic-bias trick;
    /// their recombination is exact below 2^53, so it rounds identically to
    /// the scalar `as f64` cast.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn open_unit4(raw: __m256i) -> __m256d {
        let b53 = _mm256_srli_epi64(raw, 11);
        let magic = _mm256_set1_epi64x(0x4330_0000_0000_0000); // bits of 2^52
        let two52 = _mm256_set1_pd(4_503_599_627_370_496.0);
        let lo32 = _mm256_and_si256(b53, _mm256_set1_epi64x(0xffff_ffff));
        let hi21 = _mm256_srli_epi64(b53, 32);
        let dlo = _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(lo32, magic)), two52);
        let dhi = _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(hi21, magic)), two52);
        let v = _mm256_add_pd(_mm256_mul_pd(dhi, _mm256_set1_pd(4_294_967_296.0)), dlo);
        let half = _mm256_set1_pd(0.5);
        let scale = _mm256_set1_pd(1.0 / (1u64 << 53) as f64);
        _mm256_mul_pd(_mm256_add_pd(v, half), scale)
    }

    /// 4-lane [`super::dln`], op-for-op.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn dln4(x: __m256d) -> __m256d {
        let bits = _mm256_castpd_si256(x);
        let hx = _mm256_srli_epi64(bits, 32);
        let k0 = _mm256_sub_epi64(_mm256_srli_epi64(hx, 20), _mm256_set1_epi64x(1023));
        let hxm = _mm256_and_si256(hx, _mm256_set1_epi64x(0x000f_ffff));
        let i = _mm256_and_si256(
            _mm256_add_epi64(hxm, _mm256_set1_epi64x(0x95f64)),
            _mm256_set1_epi64x(0x0010_0000),
        );
        let newhi = _mm256_or_si256(hxm, _mm256_xor_si256(i, _mm256_set1_epi64x(0x3ff0_0000)));
        let norm_bits = _mm256_or_si256(
            _mm256_slli_epi64(newhi, 32),
            _mm256_and_si256(bits, _mm256_set1_epi64x(0xffff_ffff)),
        );
        let norm = _mm256_castsi256_pd(norm_bits);
        let k = _mm256_add_epi64(k0, _mm256_srli_epi64(i, 20));
        // Small-signed i64 -> f64: two's-complement add of the 2^52 + 2^51
        // bias, reinterpret, subtract the bias back out. Exact for |k| < 2^51.
        let magic = _mm256_set1_epi64x(0x4338_0000_0000_0000);
        let dk = _mm256_sub_pd(
            _mm256_castsi256_pd(_mm256_add_epi64(k, magic)),
            _mm256_set1_pd(6_755_399_441_055_744.0),
        );
        let one = _mm256_set1_pd(1.0);
        let f = _mm256_sub_pd(norm, one);
        let s = _mm256_div_pd(f, _mm256_add_pd(_mm256_set1_pd(2.0), f));
        let z = _mm256_mul_pd(s, s);
        let w = _mm256_mul_pd(z, z);
        let t1 = _mm256_mul_pd(w, madd(w, madd(w, _mm256_set1_pd(LG6), LG4), LG2));
        let t2 = _mm256_mul_pd(
            z,
            madd(w, madd(w, madd(w, _mm256_set1_pd(LG7), LG5), LG3), LG1),
        );
        let r = _mm256_add_pd(t1, t2);
        let hfsq = _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(0.5), f), f);
        let dk_hi = _mm256_mul_pd(dk, _mm256_set1_pd(LN2_HI));
        let dk_lo = _mm256_mul_pd(dk, _mm256_set1_pd(LN2_LO));
        let inner = _mm256_add_pd(_mm256_mul_pd(s, _mm256_add_pd(hfsq, r)), dk_lo);
        _mm256_sub_pd(dk_hi, _mm256_sub_pd(_mm256_sub_pd(hfsq, inner), f))
    }

    /// `a + w * b` spelled as separate mul and add (the scalar code has no
    /// FMA contraction, so neither may we).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn madd(w: __m256d, b: __m256d, a: f64) -> __m256d {
        _mm256_add_pd(_mm256_set1_pd(a), _mm256_mul_pd(w, b))
    }

    /// 4-lane [`super::dexp`], op-for-op.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn dexp4(x: __m256d) -> __m256d {
        let sign_mask = _mm256_set1_pd(-0.0);
        let half = _mm256_or_pd(_mm256_set1_pd(0.5), _mm256_and_pd(x, sign_mask));
        let v = _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(INV_LN2), x), half);
        let k32 = _mm256_cvttpd_epi32(v); // truncation == scalar `as i32`
        let t = _mm256_cvtepi32_pd(k32);
        let hi = _mm256_sub_pd(x, _mm256_mul_pd(t, _mm256_set1_pd(LN2_HI)));
        let lo = _mm256_mul_pd(t, _mm256_set1_pd(LN2_LO));
        let r = _mm256_sub_pd(hi, lo);
        let rr = _mm256_mul_pd(r, r);
        let poly = madd(
            rr,
            madd(rr, madd(rr, madd(rr, _mm256_set1_pd(P5), P4), P3), P2),
            P1,
        );
        let c = _mm256_sub_pd(r, _mm256_mul_pd(rr, poly));
        let q = _mm256_div_pd(_mm256_mul_pd(r, c), _mm256_sub_pd(_mm256_set1_pd(2.0), c));
        let y = _mm256_sub_pd(_mm256_set1_pd(1.0), _mm256_sub_pd(_mm256_sub_pd(lo, q), hi));
        let k64 = _mm256_cvtepi32_epi64(k32);
        let scaled = _mm256_add_epi64(_mm256_castpd_si256(y), _mm256_slli_epi64(k64, 52));
        _mm256_castsi256_pd(scaled)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn exp_from_bits(bits: &[u64], rate: f64, dst: &mut [f64]) {
        let n = bits.len();
        let vrate = _mm256_set1_pd(rate);
        let neg = _mm256_set1_pd(-0.0);
        let mut i = 0;
        while i + 4 <= n {
            let raw = _mm256_loadu_si256(bits.as_ptr().add(i).cast());
            let u = open_unit4(raw);
            let l = _mm256_xor_pd(dln4(u), neg); // -dln(u), exact sign flip
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_div_pd(l, vrate));
            i += 4;
        }
        super::exp_from_bits_scalar(&bits[i..], rate, &mut dst[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn exp_transform(xs: &mut [f64], rate: f64) {
        let n = xs.len();
        let vrate = _mm256_set1_pd(rate);
        let neg = _mm256_set1_pd(-0.0);
        let mut i = 0;
        while i + 4 <= n {
            let u = _mm256_loadu_pd(xs.as_ptr().add(i));
            let l = _mm256_xor_pd(dln4(u), neg);
            _mm256_storeu_pd(xs.as_mut_ptr().add(i), _mm256_div_pd(l, vrate));
            i += 4;
        }
        super::exp_transform_scalar(&mut xs[i..], rate);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn exp_scale_transform(xs: &mut [f64], sigma: f64) {
        let n = xs.len();
        let vnsig = _mm256_set1_pd(-sigma);
        let mut i = 0;
        while i + 4 <= n {
            let u = _mm256_loadu_pd(xs.as_ptr().add(i));
            // Scalar is `-sigma * dln(u)`: one multiply by (-sigma).
            _mm256_storeu_pd(xs.as_mut_ptr().add(i), _mm256_mul_pd(vnsig, dln4(u)));
            i += 4;
        }
        super::exp_scale_transform_scalar(&mut xs[i..], sigma);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn exp_scale_from_bits(bits: &[u64], sigma: f64, dst: &mut [f64]) {
        let n = bits.len();
        let vnsig = _mm256_set1_pd(-sigma);
        let mut i = 0;
        while i + 4 <= n {
            let raw = _mm256_loadu_si256(bits.as_ptr().add(i).cast());
            let u = open_unit4(raw);
            // Scalar is `-sigma * dln(u)`: one multiply by (-sigma).
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_mul_pd(vnsig, dln4(u)));
            i += 4;
        }
        super::exp_scale_from_bits_scalar(&bits[i..], sigma, &mut dst[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn gp_from_bits(bits: &[u64], xi: f64, sigma_over_xi: f64, dst: &mut [f64]) {
        let n = bits.len();
        let vnxi = _mm256_set1_pd(-xi);
        let vsox = _mm256_set1_pd(sigma_over_xi);
        let one = _mm256_set1_pd(1.0);
        let mut i = 0;
        while i + 4 <= n {
            let raw = _mm256_loadu_si256(bits.as_ptr().add(i).cast());
            let u = open_unit4(raw);
            // Scalar: sigma_over_xi * (dexp((-xi) * dln(u)) - 1.0).
            let e = dexp4(_mm256_mul_pd(vnxi, dln4(u)));
            _mm256_storeu_pd(
                dst.as_mut_ptr().add(i),
                _mm256_mul_pd(vsox, _mm256_sub_pd(e, one)),
            );
            i += 4;
        }
        super::gp_from_bits_scalar(&bits[i..], xi, sigma_over_xi, &mut dst[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn gp_transform(xs: &mut [f64], xi: f64, sigma_over_xi: f64) {
        let n = xs.len();
        let vnxi = _mm256_set1_pd(-xi);
        let vsox = _mm256_set1_pd(sigma_over_xi);
        let one = _mm256_set1_pd(1.0);
        let mut i = 0;
        while i + 4 <= n {
            let u = _mm256_loadu_pd(xs.as_ptr().add(i));
            // Scalar: sigma_over_xi * (dexp((-xi) * dln(u)) - 1.0).
            let e = dexp4(_mm256_mul_pd(vnxi, dln4(u)));
            _mm256_storeu_pd(
                xs.as_mut_ptr().add(i),
                _mm256_mul_pd(vsox, _mm256_sub_pd(e, one)),
            );
            i += 4;
        }
        super::gp_transform_scalar(&mut xs[i..], xi, sigma_over_xi);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sketch_bins(xs: &[f64], ln_gamma: f64, lo: f64, dst: &mut [f64]) {
        let n = xs.len();
        let vlo = _mm256_set1_pd(lo);
        let vmax = _mm256_set1_pd(f64::MAX);
        let one = _mm256_set1_pd(1.0);
        let vg = _mm256_set1_pd(ln_gamma);
        let mut i = 0;
        while i + 4 <= n {
            let x = _mm256_loadu_pd(xs.as_ptr().add(i));
            // Ordered compares are false on NaN, so the placeholder
            // blend routes NaN, ±inf and sub-`lo` lanes to 1.0 exactly
            // like the scalar `x >= lo && x <= MAX` select.
            let ok = _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_GE_OQ>(x, vlo),
                _mm256_cmp_pd::<_CMP_LE_OQ>(x, vmax),
            );
            let safe = _mm256_blendv_pd(one, x, ok);
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_div_pd(dln4(safe), vg));
            i += 4;
        }
        super::sketch_bins_scalar(&xs[i..], ln_gamma, lo, &mut dst[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn geometric_transform(vals: &mut [u64], q: f64, ln_q: f64) {
        let n = vals.len();
        let one = _mm256_set1_pd(1.0);
        let thresh = _mm256_set1_pd(1.0 - q);
        let vlnq = _mm256_set1_pd(ln_q);
        let mut i = 0;
        let mut lanes = [0.0f64; 4];
        while i + 4 <= n {
            let raw = _mm256_loadu_si256(vals.as_ptr().add(i).cast());
            let u = open_unit4(raw);
            // fast-path mask: u <= 1 - q  ->  n = 1
            let fast = _mm256_cmp_pd::<_CMP_LE_OQ>(u, thresh);
            let lnp = dln4(_mm256_sub_pd(one, u));
            let nf = _mm256_round_pd::<{ _MM_FROUND_TO_POS_INF | _MM_FROUND_NO_EXC }>(
                _mm256_div_pd(lnp, vlnq),
            );
            let mask = _mm256_movemask_pd(fast);
            _mm256_storeu_pd(lanes.as_mut_ptr(), nf);
            // The f64 -> u64 saturating cast is left to the scalar `as`
            // operator so its edge semantics match the reference exactly.
            for (lane, x) in lanes.iter().enumerate() {
                vals[i + lane] = if mask & (1 << lane) != 0 {
                    1
                } else {
                    (*x as u64).max(1)
                };
            }
            i += 4;
        }
        super::geometric_transform_scalar(&mut vals[i..], q, ln_q);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn alias_from_bits(prob: &[f64], alias: &[u32], bits: &[u64], dst: &mut [u64]) {
        let n = bits.len();
        let len = prob.len();
        let vn = _mm256_set1_pd(len as f64);
        let maxi = _mm_set1_epi32((len - 1) as i32);
        let mut i = 0;
        while i + 4 <= n {
            let raw = _mm256_loadu_si256(bits.as_ptr().add(i).cast());
            let x = _mm256_mul_pd(open_unit4(raw), vn);
            // Scalar: i = (x as usize).min(len - 1); truncating convert +
            // min are the same operations lanewise.
            let idx = _mm_min_epi32(_mm256_cvttpd_epi32(x), maxi);
            let v = _mm256_sub_pd(x, _mm256_cvtepi32_pd(idx));
            let p = _mm256_i32gather_pd::<8>(prob.as_ptr(), idx);
            let take_idx = _mm256_cmp_pd::<_CMP_LT_OQ>(v, p);
            let al = _mm_i32gather_epi32::<4>(alias.as_ptr().cast::<i32>(), idx);
            // Indices and alias targets are < 2^20, so the i32 -> i64
            // widenings below are zero-extensions in effect.
            let idx64 = _mm256_cvtepi32_epi64(idx);
            let al64 = _mm256_cvtepi32_epi64(al);
            let sel = _mm256_blendv_pd(
                _mm256_castsi256_pd(al64),
                _mm256_castsi256_pd(idx64),
                take_idx,
            );
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_castpd_si256(sel));
            i += 4;
        }
        super::alias_from_bits_scalar(prob, alias, &bits[i..], &mut dst[i..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};

    fn ulp_diff(a: f64, b: f64) -> u64 {
        let ia = a.to_bits() as i64;
        let ib = b.to_bits() as i64;
        ia.abs_diff(ib)
    }

    #[test]
    fn dln_matches_libm_within_ulps() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x51_3d);
        for _ in 0..200_000 {
            let u = open_unit_from_bits(rng.next_u64());
            let d = ulp_diff(dln(u), u.ln());
            assert!(d <= 4, "u={u} dln={} ln={} ulps={d}", dln(u), u.ln());
        }
        // Domain extremes of open_unit and neighbors of 1. (`u64::MAX` is
        // excluded: the top-53-bits-set draw rounds open_unit to exactly
        // 1.0, a pre-existing 2^-53 edge the staging asserts reject.)
        for u in [
            open_unit_from_bits(0),
            open_unit_from_bits(u64::MAX >> 1),
            0.5,
            1.0 - f64::EPSILON,
            1.0,
            2.0,
            f64::MIN_POSITIVE,
            1e300,
        ] {
            let d = ulp_diff(dln(u), u.ln());
            assert!(d <= 4, "u={u} ulps={d}");
        }
        assert_eq!(dln(1.0), 0.0);
    }

    #[test]
    fn dexp_matches_libm_within_ulps() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x0e4b);
        for _ in 0..200_000 {
            let x = (open_unit_from_bits(rng.next_u64()) - 0.5) * 80.0;
            let d = ulp_diff(dexp(x), x.exp());
            assert!(d <= 4, "x={x} dexp={} exp={} ulps={d}", dexp(x), x.exp());
        }
        assert_eq!(dexp(0.0), 1.0);
        // GP sampler domain: -xi * dln(u) for xi in (0,1), u in (0,1).
        for x in [1e-300, 1e-17, 0.3465, 0.7, 5.62, 36.0, -36.0, 690.0, -690.0] {
            let d = ulp_diff(dexp(x), x.exp());
            assert!(d <= 4, "x={x} ulps={d}");
        }
    }

    #[test]
    fn round_trip_dexp_dln() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..50_000 {
            let u = open_unit_from_bits(rng.next_u64());
            let rt = dexp(dln(u));
            // ln's rounding error is amplified by exp's derivative, so the
            // relative tolerance scales with |ln u|.
            let tol = (4.0 + 4.0 * dln(u).abs()) * f64::EPSILON * u;
            assert!((rt - u).abs() <= tol, "u={u} rt={rt}");
        }
    }

    fn random_bits(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    const LENS: [usize; 7] = [0, 1, 3, 4, 7, 37, 1024];

    #[test]
    fn exp_kernels_match_scalar() {
        for &n in &LENS {
            let bits = random_bits(n, n as u64 + 1);
            let mut simd_out = Vec::new();
            exp_from_bits(&bits, 80_000.0, &mut simd_out);
            let mut scalar_out = vec![0.0; n];
            exp_from_bits_scalar(&bits, 80_000.0, &mut scalar_out);
            assert_eq!(
                simd_out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                scalar_out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "n={n}"
            );

            let uniforms: Vec<f64> = bits.iter().map(|&b| open_unit_from_bits(b)).collect();
            let mut a = uniforms.clone();
            let mut b = uniforms.clone();
            exp_transform(&mut a, 3.25);
            exp_transform_scalar(&mut b, 3.25);
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "n={n}"
            );

            let mut a = uniforms.clone();
            let mut b = uniforms.clone();
            exp_scale_transform(&mut a, 1.6e-5);
            exp_scale_transform_scalar(&mut b, 1.6e-5);
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "n={n}"
            );

            let mut a = uniforms.clone();
            let mut b = uniforms;
            gp_transform(&mut a, 0.15, (1.0 - 0.15) / 56_250.0 / 0.15);
            gp_transform_scalar(&mut b, 0.15, (1.0 - 0.15) / 56_250.0 / 0.15);
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "n={n}"
            );
        }
    }

    #[test]
    fn gap_bits_kernels_match_scalar() {
        for &n in &LENS {
            let bits = random_bits(n, 4_200 + n as u64);

            let mut simd_out = Vec::new();
            exp_scale_from_bits(&bits, 1.6e-5, &mut simd_out);
            let mut scalar_out = vec![0.0; n];
            exp_scale_from_bits_scalar(&bits, 1.6e-5, &mut scalar_out);
            assert_eq!(
                simd_out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                scalar_out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "n={n}"
            );

            let (xi, sox) = (0.15, (1.0 - 0.15) / 56_250.0 / 0.15);
            let mut simd_out = Vec::new();
            gp_from_bits(&bits, xi, sox, &mut simd_out);
            let mut scalar_out = vec![0.0; n];
            gp_from_bits_scalar(&bits, xi, sox, &mut scalar_out);
            assert_eq!(
                simd_out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                scalar_out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "n={n}"
            );

            // The bits kernel composes open_unit + the in-place transform,
            // so the two public entry points must agree bit for bit.
            let mut uniforms: Vec<f64> = bits.iter().map(|&b| open_unit_from_bits(b)).collect();
            gp_transform(&mut uniforms, xi, sox);
            assert_eq!(
                simd_out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                uniforms.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "n={n}"
            );
        }
    }

    #[test]
    fn sketch_bins_kernel_matches_scalar() {
        let ln_gamma = 2.0f64 * 0.01 / (1.0 - 0.01); // ~ln(gamma) at alpha=0.01
        let lo = 1e-12;
        for &n in &LENS {
            // Latency-shaped values with the edge cases the lane must
            // route through the placeholder blend.
            let mut xs: Vec<f64> = random_bits(n, 7_700 + n as u64)
                .iter()
                .map(|&b| 1e-5 * (1.0 + open_unit_from_bits(b) * 1e4))
                .collect();
            for (i, bad) in [0.0, 1e-300, f64::INFINITY, f64::NEG_INFINITY, f64::NAN]
                .into_iter()
                .enumerate()
            {
                if i < xs.len() {
                    xs[i] = bad;
                }
            }
            let mut simd_out = vec![0.0; n];
            sketch_bins(&xs, ln_gamma, lo, &mut simd_out);
            let mut scalar_out = vec![0.0; n];
            sketch_bins_scalar(&xs, ln_gamma, lo, &mut scalar_out);
            assert_eq!(
                simd_out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                scalar_out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "n={n}"
            );
        }
    }

    #[test]
    fn geometric_kernel_matches_scalar() {
        let q = 0.1f64;
        let ln_q = q.ln();
        for &n in &LENS {
            let bits = random_bits(n, 90 + n as u64);
            let mut a = bits.clone();
            let mut b = bits;
            geometric_transform(&mut a, q, ln_q);
            geometric_transform_scalar(&mut b, q, ln_q);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn alias_kernel_matches_scalar() {
        // A toy alias table (values irrelevant to identity — only loads).
        let prob: Vec<f64> = (0..13).map(|i| (i as f64 * 0.37).fract()).collect();
        let alias: Vec<u32> = (0..13).map(|i| (i * 5 + 2) % 13).collect();
        for &n in &LENS {
            let bits = random_bits(n, 1700 + n as u64);
            let mut simd_out = Vec::new();
            alias_from_bits(&prob, &alias, &bits, &mut simd_out);
            let mut scalar_out = vec![0u64; n];
            alias_from_bits_scalar(&prob, &alias, &bits, &mut scalar_out);
            assert_eq!(simd_out, scalar_out, "n={n}");
        }
    }

    #[test]
    fn forced_scalar_is_bit_identical() {
        let bits = random_bits(1024, 0xf0);
        let mut auto_out = Vec::new();
        exp_from_bits(&bits, 80_000.0, &mut auto_out);
        set_forced_scalar(true);
        let mut forced_out = Vec::new();
        exp_from_bits(&bits, 80_000.0, &mut forced_out);
        set_forced_scalar(false);
        assert_eq!(
            auto_out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            forced_out.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }
}
