//! The gamma distribution (Erlang for integer shape).

use memlat_numerics::special::gamma_p;
use rand::RngCore;

use crate::{open_unit, Continuous, ParamError};

/// Gamma distribution with shape `k > 0` and rate `β > 0` (mean `k/β`).
///
/// Integer shapes give the Erlang family — sums of exponential phases —
/// which provide *less* bursty-than-Poisson arrival processes for
/// sensitivity sweeps around the paper's burst-degree axis (Erlang sits
/// between deterministic and exponential in variability).
///
/// # Examples
///
/// ```
/// use memlat_dist::{Continuous, Gamma};
/// # fn main() -> Result<(), memlat_dist::ParamError> {
/// let erlang4 = Gamma::erlang(4, 2.0)?;
/// assert_eq!(erlang4.mean(), 2.0);
/// // L(s) = (β/(β+s))^k
/// assert!((erlang4.laplace(1.0) - (2.0f64 / 3.0).powi(4)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    rate: f64,
}

impl Gamma {
    /// Creates a gamma distribution with the given shape and rate.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless both parameters are finite and
    /// positive.
    pub fn new(shape: f64, rate: f64) -> Result<Self, ParamError> {
        if !(shape.is_finite() && shape > 0.0) {
            return Err(ParamError::new(format!(
                "gamma shape must be positive, got {shape}"
            )));
        }
        if !(rate.is_finite() && rate > 0.0) {
            return Err(ParamError::new(format!(
                "gamma rate must be positive, got {rate}"
            )));
        }
        Ok(Self { shape, rate })
    }

    /// Creates an Erlang-`k` distribution with the given **mean**: the sum
    /// of `k` exponential phases, each with mean `mean/k`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `k == 0` or `mean ≤ 0`.
    pub fn erlang(k: u32, mean: f64) -> Result<Self, ParamError> {
        if k == 0 {
            return Err(ParamError::new("erlang shape must be at least 1"));
        }
        if !(mean.is_finite() && mean > 0.0) {
            return Err(ParamError::new(format!(
                "erlang mean must be positive, got {mean}"
            )));
        }
        Self::new(f64::from(k), f64::from(k) / mean)
    }

    /// Shape parameter `k`.
    #[must_use]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Rate parameter `β`.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Draws one sample through a concrete RNG type — the monomorphized
    /// twin of [`Continuous::sample`], bit-identical draw for draw.
    #[inline]
    pub fn sample_with<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.shape >= 1.0 {
            Self::sample_shape_ge_one(self.shape, rng) / self.rate
        } else {
            // Boost: Gamma(k) = Gamma(k+1) · U^{1/k}.
            let g = Self::sample_shape_ge_one(self.shape + 1.0, rng);
            let u = open_unit(rng);
            g * u.powf(1.0 / self.shape) / self.rate
        }
    }

    /// Fills `out` with samples — bit-identical to `out.len()` successive
    /// [`Self::sample_with`] calls on the same RNG state.
    ///
    /// Marsaglia–Tsang is a rejection sampler: each sample consumes a
    /// data-dependent number of draws, so the uniforms cannot be staged
    /// ahead of the transform. This is the scalar sampler in a loop,
    /// provided so every law shares the block entry point.
    pub fn fill<R: RngCore + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for x in out.iter_mut() {
            *x = self.sample_with(rng);
        }
    }

    /// Marsaglia–Tsang sampler for shape ≥ 1.
    fn sample_shape_ge_one<R: RngCore + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            // Standard normal via Box–Muller.
            let u1 = open_unit(rng);
            let u2 = open_unit(rng);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let v = (1.0 + c * z).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = open_unit(rng);
            if u < 1.0 - 0.0331 * z.powi(4) || u.ln() < 0.5 * z * z + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Continuous for Gamma {
    fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            gamma_p(self.shape, self.rate * t)
        }
    }

    fn mean(&self) -> f64 {
        self.shape / self.rate
    }

    fn variance(&self) -> f64 {
        self.shape / (self.rate * self.rate)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.sample_with(rng)
    }

    fn laplace(&self, s: f64) -> f64 {
        assert!(s >= 0.0, "laplace transform requires s >= 0, got {s}");
        (self.rate / (self.rate + s)).powf(self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_params() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::erlang(0, 1.0).is_err());
        assert!(Gamma::erlang(2, -1.0).is_err());
    }

    #[test]
    fn shape_one_is_exponential() {
        let g = Gamma::new(1.0, 2.0).unwrap();
        let e = crate::Exponential::new(2.0).unwrap();
        for t in [0.1, 0.5, 1.0, 3.0] {
            assert!((g.cdf(t) - e.cdf(t)).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn erlang_cdf_closed_form() {
        // Erlang(3, rate β): F(t) = 1 - e^{-βt}(1 + βt + (βt)²/2)
        let g = Gamma::new(3.0, 1.5).unwrap();
        for t in [0.2f64, 1.0, 2.0, 5.0] {
            let x = 1.5 * t;
            let expect = 1.0 - (-x).exp() * (1.0 + x + x * x / 2.0);
            assert!((g.cdf(t) - expect).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn laplace_closed_vs_numeric() {
        let g = Gamma::new(2.5, 3.0).unwrap();
        for s in [0.1, 1.0, 10.0] {
            let numeric = crate::laplace::numeric_laplace(&|t| g.cdf(t), s, g.mean());
            assert!((g.laplace(s) - numeric).abs() < 1e-9, "s={s}");
        }
    }

    #[test]
    fn erlang_less_variable_than_exponential() {
        let erl = Gamma::erlang(8, 1.0).unwrap();
        let exp = crate::Exponential::with_mean(1.0).unwrap();
        assert!(erl.variance() < exp.variance());
        assert_eq!(erl.mean(), exp.mean());
    }

    #[test]
    fn sample_moments_converge() {
        let g = Gamma::new(3.0, 2.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1.5).abs() < 0.01, "mean={mean}");
        assert!((var - 0.75).abs() < 0.02, "var={var}");
    }

    #[test]
    fn small_shape_sampler() {
        let g = Gamma::new(0.5, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
