//! The Weibull distribution.

use memlat_numerics::special::ln_gamma;
use rand::RngCore;

use crate::{open_unit, Continuous, ParamError};

/// Weibull distribution with shape `k > 0` and scale `λ > 0`:
/// `F(t) = 1 − e^{-(t/λ)^k}`.
///
/// Sub-exponential tails for `k < 1` give another bursty arrival family
/// (stretched-exponential rather than polynomial like the Generalized
/// Pareto), widening the burstiness axis of the sensitivity experiments.
///
/// # Examples
///
/// ```
/// use memlat_dist::{Continuous, Weibull};
/// # fn main() -> Result<(), memlat_dist::ParamError> {
/// let d = Weibull::new(2.0, 1.0)?; // Rayleigh
/// assert!((d.cdf(1.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution with the given shape and scale.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless both parameters are finite and
    /// positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, ParamError> {
        if !(shape.is_finite() && shape > 0.0) {
            return Err(ParamError::new(format!(
                "weibull shape must be positive, got {shape}"
            )));
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(ParamError::new(format!(
                "weibull scale must be positive, got {scale}"
            )));
        }
        Ok(Self { shape, scale })
    }

    /// Creates a Weibull with the given shape, scaled to the given mean.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `shape ≤ 0` or `mean ≤ 0`.
    pub fn with_mean(shape: f64, mean: f64) -> Result<Self, ParamError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(ParamError::new(format!(
                "weibull mean must be positive, got {mean}"
            )));
        }
        if !(shape.is_finite() && shape > 0.0) {
            return Err(ParamError::new(format!(
                "weibull shape must be positive, got {shape}"
            )));
        }
        // mean = λ Γ(1 + 1/k)
        let g = ln_gamma(1.0 + 1.0 / shape).exp();
        Self::new(shape, mean / g)
    }

    /// Shape parameter `k`.
    #[must_use]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `λ`.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Continuous for Weibull {
    fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            -(-(t / self.scale).powf(self.shape)).exp_m1()
        }
    }

    fn mean(&self) -> f64 {
        self.scale * ln_gamma(1.0 + 1.0 / self.shape).exp()
    }

    fn variance(&self) -> f64 {
        let g2 = ln_gamma(1.0 + 2.0 / self.shape).exp();
        let g1 = ln_gamma(1.0 + 1.0 / self.shape).exp();
        self.scale * self.scale * (g2 - g1 * g1)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.scale * (-open_unit(rng).ln()).powf(1.0 / self.shape)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&p),
            "quantile requires p in [0,1), got {p}"
        );
        self.scale * (-(-p).ln_1p()).powf(1.0 / self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_params() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, 0.0).is_err());
        assert!(Weibull::with_mean(-1.0, 1.0).is_err());
    }

    #[test]
    fn shape_one_is_exponential() {
        let w = Weibull::new(1.0, 0.5).unwrap();
        let e = crate::Exponential::new(2.0).unwrap();
        for t in [0.1, 0.5, 2.0] {
            assert!((w.cdf(t) - e.cdf(t)).abs() < 1e-12, "t={t}");
        }
        assert!((w.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn with_mean_hits_mean() {
        for k in [0.5, 1.0, 2.0, 3.7] {
            let w = Weibull::with_mean(k, 4.0).unwrap();
            assert!((w.mean() - 4.0).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let w = Weibull::new(0.7, 2.0).unwrap();
        for p in [0.1, 0.5, 0.9, 0.9999] {
            assert!((w.cdf(w.quantile(p)) - p).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn sample_mean_converges() {
        let w = Weibull::with_mean(0.6, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let n = 400_000;
        let mean: f64 = (0..n).map(|_| w.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn numeric_laplace_decreasing() {
        let w = Weibull::with_mean(0.6, 1.0).unwrap();
        let mut prev = 1.0 + 1e-12;
        for s in [0.0, 0.5, 1.0, 5.0, 50.0] {
            let l = w.laplace(s);
            assert!(l <= prev && l >= 0.0, "s={s}");
            prev = l;
        }
    }
}
