//! Probability distributions for the `memlat` workspace.
//!
//! The memcached latency model (Cheng et al., ICDCS 2017) is driven by the
//! statistics of key inter-arrival gaps and service times. This crate
//! provides the distributions the model and the simulator share, each with:
//!
//! * a CDF / survival function,
//! * moments (`mean`, `variance` — possibly infinite for heavy tails),
//! * an inverse-CDF or specialized **sampler** (for the discrete-event
//!   simulator),
//! * a **Laplace–Stieltjes transform** `L(s) = E[e^{-sT}]` (for the GI/M/1
//!   fixed point `δ = L_TX((1-δ)(1-q)μ_S)`), closed-form where available
//!   and numeric otherwise ([`laplace::numeric_laplace`]).
//!
//! All continuous distributions here have non-negative support, matching
//! their role as inter-arrival gaps and service times.
//!
//! # Examples
//!
//! ```
//! use memlat_dist::{Continuous, Exponential, GeneralizedPareto};
//!
//! # fn main() -> Result<(), memlat_dist::ParamError> {
//! let exp = Exponential::new(2.0)?;
//! assert!((exp.laplace(1.0) - 2.0 / 3.0).abs() < 1e-12);
//!
//! // The Facebook inter-arrival law: heavy-tailed Generalized Pareto.
//! let gpd = GeneralizedPareto::with_mean(0.15, 16e-6)?;
//! assert!((gpd.mean() - 16e-6).abs() < 1e-18);
//! assert!(gpd.laplace(0.0) > 0.999_999);
//! # Ok(())
//! # }
//! ```

// `deny` (not `forbid`): the `simd` module is the workspace's single audited
// unsafe island (raw AVX2 intrinsics) and opts back in locally.
#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use rand::RngCore;

pub mod binomial;
pub mod deterministic;
pub mod exponential;
pub mod gamma;
pub mod generalized_pareto;
pub mod geometric;
pub mod hyperexp;
pub mod laplace;
pub mod lognormal;
pub mod multinomial;
pub mod preset;
pub mod simd;
pub mod uniform;
pub mod weibull;
pub mod zipf;

pub use binomial::Binomial;
pub use deterministic::Deterministic;
pub use exponential::Exponential;
pub use gamma::Gamma;
pub use generalized_pareto::GeneralizedPareto;
pub use geometric::GeometricBatch;
pub use hyperexp::Hyperexponential;
pub use lognormal::LogNormal;
pub use multinomial::multinomial_counts;
pub use preset::GapLaw;
pub use uniform::Uniform;
pub use weibull::Weibull;
pub use zipf::Zipf;

/// Error returned when a distribution is constructed with invalid
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamError {
    what: String,
}

impl ParamError {
    /// Creates a parameter error with the given description.
    #[must_use]
    pub fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for ParamError {}

/// A continuous probability distribution on `[0, ∞)`.
///
/// Implementors represent inter-arrival gaps or service times. The trait is
/// object-safe so queueing solvers can hold `&dyn Continuous` /
/// `Box<dyn Continuous>` arrival laws.
///
/// # Examples
///
/// ```
/// use memlat_dist::{Continuous, Exponential};
/// # fn main() -> Result<(), memlat_dist::ParamError> {
/// let d: Box<dyn Continuous> = Box::new(Exponential::new(1.0)?);
/// assert!((d.cdf(d.quantile(0.5)) - 0.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub trait Continuous: fmt::Debug + Send + Sync {
    /// Cumulative distribution function `P{T ≤ t}`.
    ///
    /// Must return 0 for `t < 0` and be non-decreasing.
    fn cdf(&self, t: f64) -> f64;

    /// Mean `E[T]`. May be `f64::INFINITY` for very heavy tails.
    fn mean(&self) -> f64;

    /// Variance `Var[T]`. May be `f64::INFINITY`.
    fn variance(&self) -> f64;

    /// Draws one sample.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;

    /// Survival function `P{T > t} = 1 − CDF(t)`.
    fn survival(&self, t: f64) -> f64 {
        (1.0 - self.cdf(t)).clamp(0.0, 1.0)
    }

    /// Laplace–Stieltjes transform `L(s) = E[e^{-sT}]` for `s ≥ 0`.
    ///
    /// The default evaluates the transform numerically from the CDF via
    /// [`laplace::numeric_laplace`], anchored at the distribution's mean;
    /// closed-form implementations should override it.
    ///
    /// # Panics
    ///
    /// Implementations may panic for `s < 0`.
    fn laplace(&self, s: f64) -> f64 {
        laplace::numeric_laplace(&|t| self.cdf(t), s, self.mean())
    }

    /// Quantile function: the smallest `t` with `CDF(t) ≥ p`, `p ∈ [0, 1)`.
    ///
    /// The default inverts the CDF numerically by bracket doubling and
    /// bisection.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&p),
            "quantile requires p in [0,1), got {p}"
        );
        if p == 0.0 {
            return 0.0;
        }
        let mut hi = self.mean().max(1e-12);
        if !hi.is_finite() {
            hi = 1.0;
        }
        let mut guard = 0;
        while self.cdf(hi) < p {
            hi *= 2.0;
            guard += 1;
            assert!(guard < 1100, "quantile bracket expansion failed (p={p})");
        }
        memlat_numerics::bisect(|t| self.cdf(t) - p, 0.0, hi, 1e-14 * hi.max(1.0), 200)
            .unwrap_or(hi)
    }
}

/// A discrete probability distribution on the non-negative integers.
///
/// Used for batch sizes (number of concurrent keys) and popularity ranks.
pub trait Discrete: fmt::Debug + Send + Sync {
    /// Probability mass `P{X = k}`.
    fn pmf(&self, k: u64) -> f64;

    /// Cumulative distribution `P{X ≤ k}`.
    fn cdf(&self, k: u64) -> f64;

    /// Mean `E[X]`.
    fn mean(&self) -> f64;

    /// Draws one sample.
    fn sample(&self, rng: &mut dyn RngCore) -> u64;
}

/// Draws a uniform variate in the open interval `(0, 1)`.
///
/// Never returns exactly 0 or 1, so it is safe to feed into `ln` and
/// inverse-CDF formulas.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let u = memlat_dist::open_unit(&mut rng);
/// assert!(u > 0.0 && u < 1.0);
/// ```
#[inline]
pub fn open_unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    open_unit_from_bits(rng.next_u64())
}

/// Converts one raw `next_u64` draw into the uniform variate
/// [`open_unit`] would have produced from it.
///
/// This is the staging half of the block-batched samplers: a hot loop can
/// bank raw `next_u64` outputs into a `u64` lane in draw order, then apply
/// this (pure, branch-free) transform over the whole slice — the results
/// are bit-identical to calling [`open_unit`] at the original draw sites.
///
/// # Examples
///
/// ```
/// use rand::{RngCore, SeedableRng};
/// let mut a = rand::rngs::StdRng::seed_from_u64(7);
/// let mut b = a.clone();
/// let u = memlat_dist::open_unit(&mut a);
/// let v = memlat_dist::open_unit_from_bits(b.next_u64());
/// assert_eq!(u.to_bits(), v.to_bits());
/// ```
#[inline]
pub fn open_unit_from_bits(raw: u64) -> f64 {
    // 53 random mantissa bits, then nudge away from 0.
    let bits = raw >> 11;
    let u = (bits as f64 + 0.5) * (1.0 / (1u64 << 53) as f64);
    debug_assert!(u > 0.0 && u < 1.0);
    u
}

/// Boxed distributions forward the whole trait (including the
/// closed-form `laplace`/`quantile` overrides of the inner type), so
/// generic samplers like `BatchArrivals<G>` accept `Box<dyn Continuous>`
/// and concrete laws alike.
impl<T: Continuous + ?Sized> Continuous for Box<T> {
    fn cdf(&self, t: f64) -> f64 {
        (**self).cdf(t)
    }

    fn mean(&self) -> f64 {
        (**self).mean()
    }

    fn variance(&self) -> f64 {
        (**self).variance()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        (**self).sample(rng)
    }

    fn survival(&self, t: f64) -> f64 {
        (**self).survival(t)
    }

    fn laplace(&self, s: f64) -> f64 {
        (**self).laplace(s)
    }

    fn quantile(&self, p: f64) -> f64 {
        (**self).quantile(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn open_unit_stays_open() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let u = open_unit(&mut rng);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn param_error_display() {
        let e = ParamError::new("rate must be positive");
        assert!(e.to_string().contains("rate must be positive"));
    }

    #[test]
    fn trait_is_object_safe() {
        let d: Box<dyn Continuous> = Box::new(Exponential::new(3.0).unwrap());
        assert!((d.mean() - 1.0 / 3.0).abs() < 1e-15);
        let _: &dyn Discrete = &GeometricBatch::new(0.1).unwrap();
    }
}
