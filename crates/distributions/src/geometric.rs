//! The geometric batch-size distribution of the paper's `GI^X/M/1` model.

use rand::RngCore;

use crate::{open_unit, Discrete, ParamError};

/// Batch size `X` on `{1, 2, …}` with `P{X = n} = q^{n-1}(1 − q)`.
///
/// `q` is the paper's *concurrent probability*: each additional key in a
/// batch arrives "concurrently" (within <1 µs) with probability `q`
/// (Facebook measured `q ≈ 0.1159`, the paper's experiments use `q = 0.1`).
/// The mean batch size is `1/(1−q)`.
///
/// # Examples
///
/// ```
/// use memlat_dist::{Discrete, GeometricBatch};
/// # fn main() -> Result<(), memlat_dist::ParamError> {
/// let x = GeometricBatch::new(0.1)?;
/// assert!((x.mean() - 1.0 / 0.9).abs() < 1e-12);
/// assert!((x.pmf(1) - 0.9).abs() < 1e-12);
/// assert!((x.pmf(2) - 0.09).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricBatch {
    q: f64,
    // ln(q), hoisted out of the per-draw inverse CDF (−∞ when q = 0,
    // where the single-key fast path never reads it).
    ln_q: f64,
}

impl GeometricBatch {
    /// Creates a batch-size distribution with concurrency probability
    /// `q ∈ [0, 1)`.
    ///
    /// `q = 0` means every batch has exactly one key.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `q ∉ [0, 1)`.
    pub fn new(q: f64) -> Result<Self, ParamError> {
        if !(q.is_finite() && (0.0..1.0).contains(&q)) {
            return Err(ParamError::new(format!(
                "concurrency probability must satisfy 0 <= q < 1, got {q}"
            )));
        }
        Ok(Self { q, ln_q: q.ln() })
    }

    /// The concurrency probability `q`.
    #[must_use]
    pub fn q(&self) -> f64 {
        self.q
    }
}

impl GeometricBatch {
    /// Draws one batch size through a concrete RNG type — the
    /// monomorphized twin of [`Discrete::sample`], bit-identical draw
    /// for draw.
    #[inline]
    pub fn sample_with<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.q == 0.0 {
            return 1;
        }
        // Inverse CDF: smallest n with 1 − q^n ≥ u ⇔ n ≥ ln(1−u)/ln(q).
        let u = open_unit(rng);
        // n = 1 ⇔ u ≤ 1 − q: the common case (q ≪ 1) needs only the
        // compare, not the log — 1 − u ≥ q gives ln(1−u)/ln(q) ≤ 1.
        if u <= 1.0 - self.q {
            return 1;
        }
        let n = (crate::simd::dln(1.0 - u) / self.ln_q).ceil();
        (n as u64).max(1)
    }

    /// Fills `out` with batch sizes — bit-identical to `out.len()`
    /// successive [`Self::sample_with`] calls on the same RNG state.
    ///
    /// For `q = 0` no RNG state is consumed (matching the scalar fast
    /// path); otherwise raw `next_u64` draws are staged into the slice in
    /// scalar order and the inverse-CDF transform (including the `n = 1`
    /// compare-only fast path) runs over the whole block.
    pub fn fill_u64<R: RngCore + ?Sized>(&self, rng: &mut R, out: &mut [u64]) {
        if self.q == 0.0 {
            out.fill(1);
            return;
        }
        for b in out.iter_mut() {
            *b = rng.next_u64();
        }
        crate::simd::geometric_transform(out, self.q, self.ln_q);
    }
}

impl Discrete for GeometricBatch {
    fn pmf(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        self.q.powi((k - 1) as i32) * (1.0 - self.q)
    }

    fn cdf(&self, k: u64) -> f64 {
        if k == 0 {
            0.0
        } else {
            1.0 - self.q.powi(k as i32)
        }
    }

    fn mean(&self) -> f64 {
        1.0 / (1.0 - self.q)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        self.sample_with(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_q() {
        assert!(GeometricBatch::new(1.0).is_err());
        assert!(GeometricBatch::new(-0.1).is_err());
        assert!(GeometricBatch::new(f64::NAN).is_err());
    }

    #[test]
    fn q_zero_is_always_one() {
        let x = GeometricBatch::new(0.0).unwrap();
        assert_eq!(x.mean(), 1.0);
        assert_eq!(x.pmf(1), 1.0);
        assert_eq!(x.pmf(2), 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(x.sample(&mut rng), 1);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let x = GeometricBatch::new(0.3).unwrap();
        let total: f64 = (1..200).map(|k| x.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_consistent_with_pmf() {
        let x = GeometricBatch::new(0.45).unwrap();
        let mut acc = 0.0;
        for k in 1..50 {
            acc += x.pmf(k);
            assert!((x.cdf(k) - acc).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn facebook_concurrency_probability() {
        // P{X >= 2} = q: the paper's "two or more keys within <1 µs with
        // probability 0.1159".
        let x = GeometricBatch::new(0.1159).unwrap();
        assert!((1.0 - x.cdf(1) - 0.1159).abs() < 1e-12);
    }

    #[test]
    fn sample_distribution_matches_pmf() {
        let x = GeometricBatch::new(0.25).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let n = 400_000;
        let mut counts = [0u64; 6];
        let mut mean = 0.0;
        for _ in 0..n {
            let v = x.sample(&mut rng);
            mean += v as f64;
            if v <= 5 {
                counts[v as usize] += 1;
            }
        }
        mean /= n as f64;
        assert!((mean - x.mean()).abs() < 0.01, "mean={mean}");
        for k in 1..=4u64 {
            let freq = counts[k as usize] as f64 / n as f64;
            assert!((freq - x.pmf(k)).abs() < 0.005, "k={k} freq={freq}");
        }
    }
}
