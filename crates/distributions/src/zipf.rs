//! The Zipf distribution over key ranks — the source of the paper's
//! unbalanced load.

use rand::RngCore;

use crate::{open_unit, Discrete, ParamError};

/// Zipf distribution on ranks `{1, …, n}` with exponent `s ≥ 0`:
/// `P{X = k} ∝ k^{-s}`.
///
/// The paper attributes the unbalanced load distribution `{p_j}` across
/// memcached servers to skewed key popularity ("a small percentage of
/// values are accessed quite frequently", after Facebook's measurements).
/// `memlat-workload` uses this distribution to draw keys, from which the
/// per-server load shares emerge through hashing.
///
/// Sampling uses rejection-inversion (Hörmann & Derflinger), which is
/// `O(1)` per sample with no precomputed tables, so key spaces of hundreds
/// of millions of items cost nothing to set up.
///
/// # Examples
///
/// ```
/// use memlat_dist::{Discrete, Zipf};
/// # fn main() -> Result<(), memlat_dist::ParamError> {
/// let z = Zipf::new(1000, 0.99)?;
/// assert!(z.pmf(1) > z.pmf(2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    n: u64,
    exponent: f64,
    h_integral_x1: f64,
    h_integral_n: f64,
    rejection_s: f64,
    /// Generalized harmonic normalizer Σ k^{-s}; computed lazily because
    /// `pmf`/`cdf` are only needed for analysis, not sampling.
    norm: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `{1, …, n}` with the given
    /// exponent.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `n == 0` or the exponent is negative or
    /// non-finite.
    ///
    /// # Panics
    ///
    /// Never panics for validated inputs.
    pub fn new(n: u64, exponent: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError::new("zipf needs at least one rank"));
        }
        if !(exponent.is_finite() && exponent >= 0.0) {
            return Err(ParamError::new(format!(
                "zipf exponent must be non-negative, got {exponent}"
            )));
        }
        let h_integral_x1 = h_integral(1.5, exponent) - 1.0;
        let h_integral_n = h_integral(n as f64 + 0.5, exponent);
        let rejection_s =
            2.0 - h_integral_inverse(h_integral(2.5, exponent) - h(2.0, exponent), exponent);
        // Normalizer: exact sum for small n, Euler–Maclaurin beyond.
        let norm = if n <= 1_000_000 {
            let mut acc = memlat_numerics::KahanSum::new();
            for k in 1..=n {
                acc.add((k as f64).powf(-exponent));
            }
            acc.sum()
        } else {
            let head: f64 = (1..=1000u64).map(|k| (k as f64).powf(-exponent)).sum();
            // ∫_{1000.5}^{n+0.5} x^{-s} dx (midpoint-corrected tail).
            let a: f64 = 1000.5;
            let b = n as f64 + 0.5;
            let tail = if (exponent - 1.0).abs() < 1e-12 {
                (b / a).ln()
            } else {
                (b.powf(1.0 - exponent) - a.powf(1.0 - exponent)) / (1.0 - exponent)
            };
            head + tail
        };
        Ok(Self {
            n,
            exponent,
            h_integral_x1,
            h_integral_n,
            rejection_s,
            norm,
        })
    }

    /// Number of ranks.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew exponent `s`.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Draws one rank through a concrete RNG type — the monomorphized
    /// twin of [`Discrete::sample`], bit-identical draw for draw.
    #[inline]
    pub fn sample_with<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_integral_n + open_unit(rng) * (self.h_integral_x1 - self.h_integral_n);
            let x = h_integral_inverse(u, self.exponent);
            let k64 = (x + 0.5).floor();
            let k = (k64.max(1.0) as u64).min(self.n);
            let kf = k as f64;
            if kf - x <= self.rejection_s
                || u >= h_integral(kf + 0.5, self.exponent) - h(kf, self.exponent)
            {
                return k;
            }
        }
    }

    /// Fills `out` with ranks — bit-identical to `out.len()` successive
    /// [`Self::sample_with`] calls on the same RNG state.
    ///
    /// Rejection-inversion consumes a data-dependent number of draws per
    /// sample, so the uniforms cannot be staged ahead of the transform.
    /// This is the scalar sampler in a loop, provided so every law shares
    /// the block entry point.
    pub fn fill_u64<R: RngCore + ?Sized>(&self, rng: &mut R, out: &mut [u64]) {
        for k in out.iter_mut() {
            *k = self.sample_with(rng);
        }
    }
}

/// `H(x) = ∫ x^{-s} dx = (x^{1-s} − 1)/(1 − s)`, computed stably (limit
/// `ln x` at `s = 1`).
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// `h(x) = x^{-s}`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(y: f64, s: f64) -> f64 {
    let mut t = y * (1.0 - s);
    if t < -1.0 {
        // Numerical guard near the boundary of the domain.
        t = -1.0;
    }
    (helper1(t) * y).exp()
}

/// `ln(1+x)/x`, stable near zero.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x / 2.0 + x * x / 3.0
    }
}

/// `(e^x − 1)/x`, stable near zero.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x / 2.0 * (1.0 + x / 3.0)
    }
}

impl Discrete for Zipf {
    fn pmf(&self, k: u64) -> f64 {
        if k == 0 || k > self.n {
            0.0
        } else {
            (k as f64).powf(-self.exponent) / self.norm
        }
    }

    fn cdf(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        if k >= self.n {
            return 1.0;
        }
        // Exact partial sum; acceptable because analysis uses modest k.
        (1..=k).map(|i| self.pmf(i)).sum::<f64>().min(1.0)
    }

    fn mean(&self) -> f64 {
        // E[X] = Σ k · k^{-s} / norm = Σ k^{1-s} / norm.
        if self.n <= 1_000_000 {
            let mut acc = memlat_numerics::KahanSum::new();
            for k in 1..=self.n {
                acc.add((k as f64).powf(1.0 - self.exponent));
            }
            acc.sum() / self.norm
        } else {
            // Integral approximation of the numerator.
            let s = self.exponent;
            let b = self.n as f64 + 0.5;
            let num = if (s - 2.0).abs() < 1e-12 {
                b.ln() - 0.5f64.ln()
            } else {
                (b.powf(2.0 - s) - 0.5f64.powf(2.0 - s)) / (2.0 - s)
            };
            num / self.norm
        }
    }

    fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        self.sample_with(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        for s in [0.0, 0.5, 1.0, 1.5] {
            let z = Zipf::new(100, s).unwrap();
            let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-10, "s={s}");
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(50, 0.0).unwrap();
        for k in 1..=50 {
            assert!((z.pmf(k) - 0.02).abs() < 1e-12, "k={k}");
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| z.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 25.5).abs() < 0.2, "mean={mean}");
    }

    #[test]
    fn sampler_matches_pmf() {
        let z = Zipf::new(1000, 0.99).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = 500_000;
        let mut counts = [0u64; 11];
        for _ in 0..n {
            let k = z.sample(&mut rng);
            assert!((1..=1000).contains(&k));
            if k <= 10 {
                counts[k as usize] += 1;
            }
        }
        for k in 1..=10u64 {
            let freq = counts[k as usize] as f64 / n as f64;
            let expect = z.pmf(k);
            assert!(
                (freq - expect).abs() < 0.004 + 0.05 * expect,
                "k={k} freq={freq} expect={expect}"
            );
        }
    }

    #[test]
    fn skew_concentrates_mass_on_head() {
        let mild = Zipf::new(10_000, 0.5).unwrap();
        let steep = Zipf::new(10_000, 1.2).unwrap();
        assert!(steep.cdf(10) > mild.cdf(10));
        assert!(steep.pmf(1) > 10.0 * mild.pmf(1));
    }

    #[test]
    fn huge_keyspace_normalizer_is_consistent() {
        // Compare the Euler–Maclaurin normalizer against brute force just
        // above the switch-over threshold.
        let exact = Zipf::new(1_000_000, 1.01).unwrap();
        let approx = Zipf::new(1_000_001, 1.01).unwrap();
        assert!((exact.norm - approx.norm).abs() / exact.norm < 1e-3);
    }

    #[test]
    fn sampler_works_on_large_n() {
        let z = Zipf::new(100_000_000, 1.01).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=100_000_000).contains(&k));
        }
    }
}
