//! Multinomial count sampling — how the `N` keys of one request split
//! across servers.

use rand::RngCore;

use crate::{Binomial, Discrete, ParamError};

/// Draws multinomial counts: how many of `n` trials land in each category,
/// with category probabilities `probs` (which must sum to 1 within 1e-9).
///
/// Used by the simulator's request assembler: an end-user request's `N`
/// keys split across the `M` memcached servers according to the load
/// distribution `{p_j}` (§4.3.2 of the paper).
///
/// Implemented by the standard conditional-binomial decomposition, so it
/// is exact and `O(M)` per draw regardless of `n`.
///
/// # Errors
///
/// Returns [`ParamError`] if `probs` is empty, contains values outside
/// `[0, 1]`, or does not sum to 1.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let counts = memlat_dist::multinomial_counts(150, &[0.25; 4], &mut rng)?;
/// assert_eq!(counts.iter().sum::<u64>(), 150);
/// # Ok::<(), memlat_dist::ParamError>(())
/// ```
pub fn multinomial_counts(
    n: u64,
    probs: &[f64],
    rng: &mut dyn RngCore,
) -> Result<Vec<u64>, ParamError> {
    if probs.is_empty() {
        return Err(ParamError::new("multinomial needs at least one category"));
    }
    let sum: f64 = probs.iter().sum();
    if (sum - 1.0).abs() > 1e-9 {
        return Err(ParamError::new(format!(
            "probabilities must sum to 1, got {sum}"
        )));
    }
    for &p in probs {
        if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
            return Err(ParamError::new(format!("probability out of range: {p}")));
        }
    }

    let mut counts = Vec::with_capacity(probs.len());
    let mut remaining = n;
    let mut remaining_p = 1.0;
    for (i, &p) in probs.iter().enumerate() {
        if remaining == 0 {
            counts.push(0);
            continue;
        }
        if i == probs.len() - 1 {
            counts.push(remaining);
            remaining = 0;
            continue;
        }
        let cond = (p / remaining_p).clamp(0.0, 1.0);
        let c = Binomial::new(remaining, cond)
            .expect("validated conditional probability")
            .sample(rng);
        counts.push(c);
        remaining -= c;
        remaining_p = (remaining_p - p).max(f64::MIN_POSITIVE);
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_probs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(multinomial_counts(10, &[], &mut rng).is_err());
        assert!(multinomial_counts(10, &[0.5, 0.4], &mut rng).is_err());
        assert!(multinomial_counts(10, &[1.5, -0.5], &mut rng).is_err());
    }

    #[test]
    fn counts_always_sum_to_n() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for n in [0u64, 1, 7, 150, 10_000] {
            let c = multinomial_counts(n, &[0.6, 0.25, 0.1, 0.05], &mut rng).unwrap();
            assert_eq!(c.iter().sum::<u64>(), n, "n={n}");
            assert_eq!(c.len(), 4);
        }
    }

    #[test]
    fn marginals_are_binomial_means() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let probs = [0.7, 0.2, 0.1];
        let reps = 50_000;
        let mut sums = [0.0f64; 3];
        for _ in 0..reps {
            let c = multinomial_counts(100, &probs, &mut rng).unwrap();
            for (s, &v) in sums.iter_mut().zip(&c) {
                *s += v as f64;
            }
        }
        for (j, &p) in probs.iter().enumerate() {
            let mean = sums[j] / reps as f64;
            assert!((mean - 100.0 * p).abs() < 0.5, "j={j} mean={mean}");
        }
    }

    #[test]
    fn degenerate_category_gets_everything() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let c = multinomial_counts(42, &[0.0, 1.0, 0.0], &mut rng).unwrap();
        assert_eq!(c, vec![0, 42, 0]);
    }

    #[test]
    fn unbalanced_paper_shape() {
        // Fig. 10's shape: p1 large, the rest split evenly.
        let p1 = 0.75;
        let rest = (1.0 - p1) / 3.0;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let c = multinomial_counts(150, &[p1, rest, rest, rest], &mut rng).unwrap();
        assert_eq!(c.iter().sum::<u64>(), 150);
        assert!(c[0] > c[1] && c[0] > c[2] && c[0] > c[3]);
    }
}
