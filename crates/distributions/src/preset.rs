//! The closed enum of preset gap laws — static dispatch for the
//! simulator's hot path.
//!
//! The discrete-event inner loop draws one inter-batch gap per batch;
//! through `Box<dyn Continuous>` every draw pays two virtual calls (the
//! `sample` itself and the RNG it forwards to). [`GapLaw`] closes the
//! set of arrival laws the model actually uses so the match (and the
//! inverse-CDF math behind it) inlines into the loop, and the generic
//! [`GapLaw::sample_with`] monomorphizes the RNG as well. Draw-for-draw
//! the samples are **bit-identical** to the boxed path: each variant
//! delegates to the same inherent sampler its `Continuous` impl uses.
//!
//! # Examples
//!
//! ```
//! use memlat_dist::{Continuous, Exponential, GapLaw};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), memlat_dist::ParamError> {
//! let law = GapLaw::from(Exponential::new(1_000.0)?);
//! assert!((law.mean() - 1e-3).abs() < 1e-15);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! assert!(law.sample_with(&mut rng) > 0.0);
//! # Ok(())
//! # }
//! ```

use rand::RngCore;

use crate::{
    Continuous, Deterministic, Exponential, Gamma, GeneralizedPareto, Hyperexponential, Uniform,
};

/// A closed set of inter-batch gap laws with inlined, monomorphic
/// sampling.
///
/// Covers every shape the model layer's `ArrivalPattern` materializes:
/// exponential (Poisson), Generalized Pareto (Facebook), deterministic,
/// Erlang (via [`Gamma`]), uniform, and hyperexponential. For anything
/// outside this set, keep using `Box<dyn Continuous>`.
#[derive(Debug, Clone)]
pub enum GapLaw {
    /// Exponential gaps (Poisson arrivals).
    Exponential(Exponential),
    /// Generalized Pareto gaps (the Facebook workload).
    GeneralizedPareto(GeneralizedPareto),
    /// Deterministic gaps (perfect pacing).
    Deterministic(Deterministic),
    /// Erlang-`k` gaps (a [`Gamma`] with integer shape).
    Erlang(Gamma),
    /// Uniform gaps.
    Uniform(Uniform),
    /// Two-phase hyperexponential gaps.
    Hyperexponential(Hyperexponential),
}

impl GapLaw {
    /// Draws one gap with a concrete RNG type: a static-dispatch match
    /// over the closed set, bit-identical to the corresponding
    /// [`Continuous::sample`].
    #[inline]
    pub fn sample_with<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            GapLaw::Exponential(d) => d.sample_with(rng),
            GapLaw::GeneralizedPareto(d) => d.sample_with(rng),
            GapLaw::Deterministic(d) => d.sample_with(rng),
            GapLaw::Erlang(d) => d.sample_with(rng),
            GapLaw::Uniform(d) => d.sample_with(rng),
            GapLaw::Hyperexponential(d) => d.sample_with(rng),
        }
    }

    /// Fills `out` with gaps, dispatching the variant **once per block**
    /// instead of once per draw — bit-identical to `out.len()` successive
    /// [`GapLaw::sample_with`] calls on the same RNG state.
    ///
    /// Single-uniform variants (exponential, Generalized Pareto, uniform,
    /// deterministic) stage their uniforms and run the transform over the
    /// whole slice; the data-dependent samplers (Erlang, hyperexponential)
    /// fall back to the scalar loop inside their own `fill`.
    pub fn fill<R: RngCore + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        match self {
            GapLaw::Exponential(d) => d.fill(rng, out),
            GapLaw::GeneralizedPareto(d) => d.fill(rng, out),
            GapLaw::Deterministic(d) => d.fill(rng, out),
            GapLaw::Erlang(d) => d.fill(rng, out),
            GapLaw::Uniform(d) => d.fill(rng, out),
            GapLaw::Hyperexponential(d) => d.fill(rng, out),
        }
    }

    /// Whether this law draws exactly one raw `next_u64` per gap **and**
    /// has a block bits-kernel ([`GapLaw::gaps_from_bits`]) — the
    /// dispatch gate of the speculative block arrival pipeline. The
    /// data-dependent laws (Erlang, hyperexponential) and the zero-draw
    /// deterministic law stay on the scalar batch driver.
    #[must_use]
    pub fn has_bits_kernel(&self) -> bool {
        matches!(self, GapLaw::Exponential(_) | GapLaw::GeneralizedPareto(_))
    }

    /// Appends one gap per raw `next_u64` draw in `bits` onto `out`,
    /// bit-identical to feeding the same bits through
    /// [`GapLaw::sample_with`] draw for draw. The transform runs as a
    /// slice scan through the SIMD-dispatched kernels.
    ///
    /// # Panics
    ///
    /// Panics when [`GapLaw::has_bits_kernel`] is false — callers gate on
    /// it before banking bits.
    pub fn gaps_from_bits(&self, bits: &[u64], out: &mut Vec<f64>) {
        match self {
            GapLaw::Exponential(d) => crate::simd::exp_from_bits(bits, d.rate(), out),
            GapLaw::GeneralizedPareto(d) => d.fill_from_bits(bits, out),
            _ => panic!("gaps_from_bits needs a single-draw law with a bits kernel"),
        }
    }

    /// The inner law as a `&dyn Continuous` (for solvers that take the
    /// trait object).
    #[must_use]
    pub fn as_dyn(&self) -> &dyn Continuous {
        match self {
            GapLaw::Exponential(d) => d,
            GapLaw::GeneralizedPareto(d) => d,
            GapLaw::Deterministic(d) => d,
            GapLaw::Erlang(d) => d,
            GapLaw::Uniform(d) => d,
            GapLaw::Hyperexponential(d) => d,
        }
    }
}

impl Continuous for GapLaw {
    fn cdf(&self, t: f64) -> f64 {
        self.as_dyn().cdf(t)
    }

    fn mean(&self) -> f64 {
        self.as_dyn().mean()
    }

    fn variance(&self) -> f64 {
        self.as_dyn().variance()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.sample_with(rng)
    }

    fn survival(&self, t: f64) -> f64 {
        self.as_dyn().survival(t)
    }

    fn laplace(&self, s: f64) -> f64 {
        self.as_dyn().laplace(s)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.as_dyn().quantile(p)
    }
}

impl From<Exponential> for GapLaw {
    fn from(d: Exponential) -> Self {
        GapLaw::Exponential(d)
    }
}

impl From<GeneralizedPareto> for GapLaw {
    fn from(d: GeneralizedPareto) -> Self {
        GapLaw::GeneralizedPareto(d)
    }
}

impl From<Deterministic> for GapLaw {
    fn from(d: Deterministic) -> Self {
        GapLaw::Deterministic(d)
    }
}

impl From<Gamma> for GapLaw {
    fn from(d: Gamma) -> Self {
        GapLaw::Erlang(d)
    }
}

impl From<Uniform> for GapLaw {
    fn from(d: Uniform) -> Self {
        GapLaw::Uniform(d)
    }
}

impl From<Hyperexponential> for GapLaw {
    fn from(d: Hyperexponential) -> Self {
        GapLaw::Hyperexponential(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn laws() -> Vec<GapLaw> {
        vec![
            GapLaw::from(Exponential::new(1_000.0).unwrap()),
            GapLaw::from(GeneralizedPareto::facebook(0.15, 56_250.0).unwrap()),
            GapLaw::from(Deterministic::new(1e-3).unwrap()),
            GapLaw::from(Gamma::erlang(4, 1e-3).unwrap()),
            GapLaw::from(Uniform::with_mean(1e-3).unwrap()),
            GapLaw::from(Hyperexponential::with_mean_scv(1e-3, 4.0).unwrap()),
        ]
    }

    #[test]
    fn enum_sampling_is_bit_identical_to_boxed() {
        for law in laws() {
            let boxed: Box<dyn Continuous> = Box::new(law.clone());
            let mut a = rand::rngs::StdRng::seed_from_u64(0xabcd);
            let mut b = rand::rngs::StdRng::seed_from_u64(0xabcd);
            for _ in 0..2_000 {
                let x = law.sample_with(&mut a);
                let y = boxed.sample(&mut b);
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn bits_kernel_gate_matches_draw_shape() {
        let mut laned = 0;
        for law in laws() {
            if law.has_bits_kernel() {
                laned += 1;
                // One raw u64 per draw: feeding banked bits through the
                // lane kernel must reproduce sample_with bit for bit.
                use rand::RngCore;
                let mut bits_rng = rand::rngs::StdRng::seed_from_u64(0xbeef);
                let bits: Vec<u64> = (0..500).map(|_| bits_rng.next_u64()).collect();
                let mut lane = Vec::new();
                law.gaps_from_bits(&bits, &mut lane);
                let mut draw_rng = rand::rngs::StdRng::seed_from_u64(0xbeef);
                for (i, &x) in lane.iter().enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        law.sample_with(&mut draw_rng).to_bits(),
                        "draw {i}"
                    );
                }
            }
        }
        // Exponential and GeneralizedPareto — the arrival hot path's laws.
        assert_eq!(laned, 2);
    }

    #[test]
    #[should_panic(expected = "bits kernel")]
    fn gaps_from_bits_rejects_multi_draw_laws() {
        let law = GapLaw::from(Hyperexponential::with_mean_scv(1e-3, 4.0).unwrap());
        law.gaps_from_bits(&[1, 2, 3], &mut Vec::new());
    }

    #[test]
    fn trait_surface_forwards_to_inner_law() {
        for law in laws() {
            let inner = law.as_dyn();
            assert_eq!(law.mean().to_bits(), inner.mean().to_bits());
            assert_eq!(law.variance().to_bits(), inner.variance().to_bits());
            for t in [0.0, 1e-4, 1e-3, 1e-2] {
                assert_eq!(law.cdf(t).to_bits(), inner.cdf(t).to_bits());
                assert_eq!(law.survival(t).to_bits(), inner.survival(t).to_bits());
            }
            for s in [0.0, 10.0, 1e4] {
                assert_eq!(law.laplace(s).to_bits(), inner.laplace(s).to_bits());
            }
            for p in [0.1, 0.5, 0.9] {
                assert_eq!(law.quantile(p).to_bits(), inner.quantile(p).to_bits());
            }
        }
    }

    #[test]
    fn boxed_box_forwards_closed_forms() {
        // The blanket Box<T: Continuous> impl must hit the inner type's
        // overridden laplace, not the numeric default.
        let exp = Exponential::new(2.0).unwrap();
        let boxed: Box<dyn Continuous> = Box::new(exp);
        assert_eq!(boxed.laplace(1.0).to_bits(), (2.0f64 / 3.0).to_bits());
    }
}
