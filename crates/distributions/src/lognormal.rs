//! The log-normal distribution.

use rand::RngCore;

use crate::{open_unit, Continuous, ParamError};

/// Log-normal distribution: `ln T ~ Normal(μ, σ²)`.
///
/// Atikoglu et al.'s Facebook measurements fit value sizes and some service
/// components with log-normal-like laws; this implementation backs the
/// value-size presets in `memlat-workload`.
///
/// # Examples
///
/// ```
/// use memlat_dist::{Continuous, LogNormal};
/// # fn main() -> Result<(), memlat_dist::ParamError> {
/// let d = LogNormal::new(0.0, 1.0)?;
/// assert!((d.cdf(1.0) - 0.5).abs() < 1e-9); // median = e^μ
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with log-mean `mu` and log-std `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `mu` is finite and `sigma` is finite
    /// and positive.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if !mu.is_finite() {
            return Err(ParamError::new(format!(
                "lognormal mu must be finite, got {mu}"
            )));
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(ParamError::new(format!(
                "lognormal sigma must be positive, got {sigma}"
            )));
        }
        Ok(Self { mu, sigma })
    }

    /// Creates a log-normal with the given arithmetic mean and squared
    /// coefficient of variation.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `mean ≤ 0` or `scv ≤ 0`.
    pub fn with_mean_scv(mean: f64, scv: f64) -> Result<Self, ParamError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(ParamError::new(format!(
                "mean must be positive, got {mean}"
            )));
        }
        if !(scv.is_finite() && scv > 0.0) {
            return Err(ParamError::new(format!("scv must be positive, got {scv}")));
        }
        let sigma2 = (1.0 + scv).ln();
        Self::new(mean.ln() - 0.5 * sigma2, sigma2.sqrt())
    }

    fn std_normal_cdf(z: f64) -> f64 {
        // Abramowitz–Stegun 7.1.26-style rational approximation via erf.
        0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
    }
}

/// Error function approximation (A&S 7.1.26, |ε| < 1.5e-7), made odd by
/// reflection.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

impl Continuous for LogNormal {
    fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            Self::std_normal_cdf((t.ln() - self.mu) / self.sigma)
        }
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u1 = open_unit(rng);
        let u2 = open_unit(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_params() {
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::with_mean_scv(0.0, 1.0).is_err());
    }

    #[test]
    fn with_mean_scv_hits_targets() {
        let d = LogNormal::with_mean_scv(100.0, 2.0).unwrap();
        assert!((d.mean() - 100.0).abs() < 1e-9);
        let scv = d.variance() / (d.mean() * d.mean());
        assert!((scv - 2.0).abs() < 1e-9);
    }

    #[test]
    fn median_is_exp_mu() {
        let d = LogNormal::new(1.5, 0.8).unwrap();
        assert!((d.cdf(1.5f64.exp()) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn erf_reference_values() {
        // The A&S coefficients sum to 1 − 1e-9, so erf(0) ≈ 1e-9, not 0.
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_792_949_715).abs() < 5e-7);
        assert!((erf(-1.0) + 0.842_700_792_949_715).abs() < 5e-7);
        assert!((erf(3.0) - 0.999_977_909_503_001).abs() < 5e-7);
    }

    #[test]
    fn sample_mean_converges() {
        let d = LogNormal::with_mean_scv(1.0, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let n = 400_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn quantile_via_default_inverts() {
        let d = LogNormal::new(0.0, 0.5).unwrap();
        for p in [0.1, 0.5, 0.95] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-7, "p={p}");
        }
    }
}
