//! The Generalized Pareto distribution — the paper's Facebook inter-arrival
//! law.

use rand::RngCore;

use crate::{open_unit, Continuous, ParamError};

/// Generalized Pareto distribution (location 0) with shape `ξ ≥ 0` and
/// scale `σ > 0`:
///
/// ```text
/// F(t) = 1 − (1 + ξ t / σ)^{-1/ξ}        (ξ > 0)
/// F(t) = 1 − e^{-t/σ}                    (ξ = 0, the exponential limit)
/// ```
///
/// The paper (eq. 24, after Atikoglu et al.'s Facebook measurements) uses
/// this law for the inter-arrival gap of batched keys, parameterized by an
/// *average rate* `λ` and *burst degree* `ξ`:
/// `F(t) = 1 − (1 + ξλt/(1−ξ))^{-1/ξ}`, i.e. `σ = (1−ξ)/λ`, which makes the
/// mean exactly `1/λ` for any `ξ < 1`. Use [`GeneralizedPareto::facebook`]
/// for that parameterization.
///
/// For `ξ ≥ 1` the mean is infinite and the queueing model breaks down, so
/// construction is restricted to `0 ≤ ξ < 1`. Variance is infinite for
/// `ξ ≥ 0.5` (the paper sweeps ξ up to 0.95 — Table 4 — which this type
/// supports).
///
/// # Examples
///
/// ```
/// use memlat_dist::{Continuous, GeneralizedPareto};
/// # fn main() -> Result<(), memlat_dist::ParamError> {
/// // Facebook workload: ξ = 0.15, batch rate λ_B.
/// let d = GeneralizedPareto::facebook(0.15, 56_250.0)?;
/// assert!((d.mean() - 1.0 / 56_250.0).abs() < 1e-15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneralizedPareto {
    xi: f64,
    sigma: f64,
    // σ/ξ, hoisted out of the per-draw inverse CDF (0 when ξ = 0, where
    // the exponential branch never reads it).
    sigma_over_xi: f64,
}

impl GeneralizedPareto {
    /// Creates a GPD with shape `xi ∈ [0, 1)` and scale `sigma > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `xi ∉ [0, 1)` or `sigma ≤ 0` (or either is
    /// non-finite).
    pub fn new(xi: f64, sigma: f64) -> Result<Self, ParamError> {
        if !(xi.is_finite() && (0.0..1.0).contains(&xi)) {
            return Err(ParamError::new(format!(
                "generalized pareto shape must satisfy 0 <= xi < 1, got {xi}"
            )));
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(ParamError::new(format!(
                "generalized pareto scale must be positive, got {sigma}"
            )));
        }
        Ok(Self {
            xi,
            sigma,
            sigma_over_xi: if xi == 0.0 { 0.0 } else { sigma / xi },
        })
    }

    /// The paper's eq. (24) parameterization: burst degree `xi` and average
    /// arrival rate `rate` (the resulting mean gap is exactly `1/rate`).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `xi ∉ [0, 1)` or `rate ≤ 0`.
    pub fn facebook(xi: f64, rate: f64) -> Result<Self, ParamError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(ParamError::new(format!(
                "arrival rate must be positive, got {rate}"
            )));
        }
        if xi == 0.0 {
            // Exponential limit: σ = 1/rate.
            return Self::new(0.0, 1.0 / rate);
        }
        Self::new(xi, (1.0 - xi) / rate)
    }

    /// Creates a GPD with shape `xi` and the given mean.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] under the same conditions as
    /// [`GeneralizedPareto::new`].
    pub fn with_mean(xi: f64, mean: f64) -> Result<Self, ParamError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(ParamError::new(format!(
                "mean must be positive, got {mean}"
            )));
        }
        Self::new(xi, mean * (1.0 - xi))
    }

    /// Shape parameter `ξ` (the paper's burst degree).
    #[must_use]
    pub fn shape(&self) -> f64 {
        self.xi
    }

    /// Scale parameter `σ`.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.sigma
    }
}

impl GeneralizedPareto {
    /// Draws one sample through a concrete RNG type — the monomorphized
    /// twin of [`Continuous::sample`], bit-identical draw for draw.
    #[inline]
    pub fn sample_with<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = open_unit(rng);
        if self.xi == 0.0 {
            -self.sigma * crate::simd::dln(u)
        } else {
            // Inverse CDF with 1-U ~ U: ((U^{-ξ}) − 1) σ/ξ, computed as the
            // deterministic `dexp(-ξ·dln(u))` composition so the scalar
            // reference, [`Self::fill`], and the AVX2 `gp_from_bits` /
            // `gp_transform` lane kernels all produce the same bits. (PR 8
            // kept this draw on libm `powf` — ~20% shorter dependency chain
            // on the then-serial `t += gap` recurrence — but the speculative
            // block arrival pipeline turned gap generation into a lane
            // problem, where the shared composition wins and bit-identity
            // across scalar/SIMD becomes load-bearing.)
            self.sigma_over_xi * (crate::simd::dexp(-self.xi * crate::simd::dln(u)) - 1.0)
        }
    }

    /// Fills `out` with samples — bit-identical to `out.len()` successive
    /// [`Self::sample_with`] calls on the same RNG state.
    ///
    /// The uniforms are staged first (scalar draw order), then the
    /// inverse-CDF transform runs branch-hoisted over the whole block
    /// through the SIMD-dispatched kernels: `exp_scale_transform` for the
    /// `ξ = 0` exponential limit, `gp_transform` for the power law.
    pub fn fill<R: RngCore + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for u in out.iter_mut() {
            *u = open_unit(rng);
        }
        if self.xi == 0.0 {
            crate::simd::exp_scale_transform(out, self.sigma);
        } else {
            crate::simd::gp_transform(out, self.xi, self.sigma_over_xi);
        }
    }

    /// Appends one sample per raw `next_u64` draw in `bits` onto `out` —
    /// bit-identical to feeding the same bits through
    /// [`Self::sample_with`] draw for draw. This is the gap lane of the
    /// speculative block arrival pipeline: the caller banks raw bits in
    /// scalar stream order and transforms the whole slice at once.
    pub fn fill_from_bits(&self, bits: &[u64], out: &mut Vec<f64>) {
        if self.xi == 0.0 {
            crate::simd::exp_scale_from_bits(bits, self.sigma, out);
        } else {
            crate::simd::gp_from_bits(bits, self.xi, self.sigma_over_xi, out);
        }
    }
}

impl Continuous for GeneralizedPareto {
    fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        if self.xi == 0.0 {
            -(-t / self.sigma).exp_m1()
        } else {
            1.0 - (1.0 + self.xi * t / self.sigma).powf(-1.0 / self.xi)
        }
    }

    fn mean(&self) -> f64 {
        self.sigma / (1.0 - self.xi)
    }

    fn variance(&self) -> f64 {
        if self.xi >= 0.5 {
            f64::INFINITY
        } else {
            self.sigma * self.sigma / ((1.0 - self.xi).powi(2) * (1.0 - 2.0 * self.xi))
        }
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.sample_with(rng)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&p),
            "quantile requires p in [0,1), got {p}"
        );
        if self.xi == 0.0 {
            -self.sigma * (-p).ln_1p()
        } else {
            self.sigma / self.xi * ((1.0 - p).powf(-self.xi) - 1.0)
        }
    }

    fn laplace(&self, s: f64) -> f64 {
        assert!(s >= 0.0, "laplace transform requires s >= 0, got {s}");
        if self.xi == 0.0 {
            // Exponential limit: closed form.
            let rate = 1.0 / self.sigma;
            return rate / (rate + s);
        }
        crate::laplace::numeric_laplace(&|t| self.cdf(t), s, self.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_params() {
        assert!(GeneralizedPareto::new(-0.1, 1.0).is_err());
        assert!(GeneralizedPareto::new(1.0, 1.0).is_err());
        assert!(GeneralizedPareto::new(0.5, 0.0).is_err());
        assert!(GeneralizedPareto::facebook(0.15, -2.0).is_err());
    }

    #[test]
    fn facebook_parameterization_has_mean_one_over_rate() {
        for xi in [0.0, 0.15, 0.5, 0.8, 0.95] {
            let d = GeneralizedPareto::facebook(xi, 62_500.0).unwrap();
            assert!((d.mean() - 1.6e-5).abs() < 1e-18, "xi={xi}");
        }
    }

    #[test]
    fn xi_zero_is_exponential() {
        let gpd = GeneralizedPareto::facebook(0.0, 3.0).unwrap();
        let exp = crate::Exponential::new(3.0).unwrap();
        for t in [0.01, 0.1, 1.0, 5.0] {
            assert!((gpd.cdf(t) - exp.cdf(t)).abs() < 1e-14, "t={t}");
        }
    }

    #[test]
    fn cdf_matches_paper_eq_24() {
        // F(t) = 1 - (1 + ξλt/(1-ξ))^{-1/ξ}
        let (xi, lam) = (0.15, 62_500.0);
        let d = GeneralizedPareto::facebook(xi, lam).unwrap();
        for t in [1e-6, 16e-6, 100e-6, 1e-3] {
            let expect = 1.0 - (1.0 + xi * lam * t / (1.0 - xi)).powf(-1.0 / xi);
            assert!((d.cdf(t) - expect).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn heavy_tail_has_infinite_variance() {
        assert!(GeneralizedPareto::facebook(0.6, 1.0)
            .unwrap()
            .variance()
            .is_infinite());
        assert!(GeneralizedPareto::facebook(0.3, 1.0)
            .unwrap()
            .variance()
            .is_finite());
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = GeneralizedPareto::facebook(0.4, 10.0).unwrap();
        for p in [0.0, 0.2, 0.5, 0.9, 0.999] {
            let t = d.quantile(p);
            assert!((d.cdf(t) - p).abs() < 1e-10, "p={p}");
        }
    }

    #[test]
    fn sample_mean_converges() {
        // ξ=0.15 has finite variance, so the LLN is well-behaved.
        let d = GeneralizedPareto::facebook(0.15, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = 400_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn fill_from_bits_matches_sample_with() {
        use rand::RngCore;
        // Both GP branches: ξ > 0 (power law) and ξ = 0 (exponential limit).
        for d in [
            GeneralizedPareto::facebook(0.15, 56_250.0).unwrap(),
            GeneralizedPareto::facebook(0.0, 56_250.0).unwrap(),
        ] {
            let mut bits_rng = rand::rngs::StdRng::seed_from_u64(31);
            let bits: Vec<u64> = (0..1000).map(|_| bits_rng.next_u64()).collect();
            let mut lane = Vec::new();
            d.fill_from_bits(&bits, &mut lane);
            let mut draw_rng = rand::rngs::StdRng::seed_from_u64(31);
            for (i, &x) in lane.iter().enumerate() {
                let y = d.sample_with(&mut draw_rng);
                assert_eq!(x.to_bits(), y.to_bits(), "draw {i}");
            }
        }
    }

    #[test]
    fn samples_heavier_than_exponential_in_tail() {
        // With matched means, the GPD's high quantiles dominate the
        // exponential's — the "burst" the paper models.
        let gpd = GeneralizedPareto::facebook(0.5, 1.0).unwrap();
        let exp = crate::Exponential::new(1.0).unwrap();
        assert!(gpd.quantile(0.999) > 2.0 * exp.quantile(0.999));
    }

    #[test]
    fn numeric_laplace_sane() {
        use crate::Continuous;
        let d = GeneralizedPareto::facebook(0.15, 56_250.0).unwrap();
        // L is decreasing in s, within (0,1), and L(0)=1.
        assert_eq!(d.laplace(0.0), 1.0);
        let mut prev = 1.0;
        for s in [1.0, 10.0, 1e3, 1e4, 1e5] {
            let l = d.laplace(s);
            assert!(l > 0.0 && l < prev, "s={s} l={l}");
            prev = l;
        }
        // First-moment check: (1 - L(s))/s → mean as s → 0.
        let s = 1e-3;
        let approx_mean = (1.0 - d.laplace(s)) / s;
        assert!((approx_mean - d.mean()).abs() < 1e-7);
    }
}
