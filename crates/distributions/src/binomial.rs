//! The binomial distribution — the paper's count `K` of missed keys out of
//! `N`.

use rand::RngCore;

use crate::{open_unit, Discrete, ParamError};

/// Binomial distribution `Bin(n, p)`.
///
/// In the model, the number of cache-missed keys out of the `N` keys of an
/// end-user request is `K ~ Bin(N, r)` with miss ratio `r` (§4.4 of the
/// paper, where it is called multinomial with mean `N·r`).
///
/// Sampling strategy (exactness where it matters, speed where `n` is
/// huge — Fig. 13 sweeps `N` up to 10⁶):
///
/// * `n ≤ 64`: direct Bernoulli counting (exact).
/// * `n·min(p,1−p) ≤ 30`: geometric-skip counting (exact).
/// * otherwise: normal approximation with continuity correction, clamped
///   to `[0, n]` (relative error of resulting averages ≪ the simulation's
///   own noise).
///
/// # Examples
///
/// ```
/// use memlat_dist::{Binomial, Discrete};
/// # fn main() -> Result<(), memlat_dist::ParamError> {
/// let k = Binomial::new(150, 0.01)?;
/// assert!((k.mean() - 1.5).abs() < 1e-12);
/// assert!((k.pmf(0) - 0.99f64.powi(150)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution with `n` trials and success
    /// probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `p ∉ [0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self, ParamError> {
        if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
            return Err(ParamError::new(format!(
                "binomial probability must be in [0,1], got {p}"
            )));
        }
        Ok(Self { n, p })
    }

    /// Number of trials.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    fn ln_pmf(&self, k: u64) -> f64 {
        use memlat_numerics::special::ln_gamma;
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        let n = self.n as f64;
        let kf = k as f64;
        ln_gamma(n + 1.0) - ln_gamma(kf + 1.0) - ln_gamma(n - kf + 1.0)
            + kf * self.p.ln()
            + (n - kf) * (-self.p).ln_1p()
    }

    fn sample_bernoulli_count(&self, rng: &mut dyn RngCore) -> u64 {
        let mut count = 0;
        for _ in 0..self.n {
            if open_unit(rng) < self.p {
                count += 1;
            }
        }
        count
    }

    /// "Second waiting time" method: jump between successes using
    /// geometric gaps. Exact; O(n·p) expected time.
    fn sample_geometric_skip(&self, rng: &mut dyn RngCore) -> u64 {
        let ln_q = (-self.p).ln_1p();
        let mut successes = 0u64;
        let mut trials = 0u64;
        loop {
            let gap = (open_unit(rng).ln() / ln_q).floor() as u64 + 1;
            trials = trials.saturating_add(gap);
            if trials > self.n {
                return successes;
            }
            successes += 1;
        }
    }

    fn sample_normal_approx(&self, rng: &mut dyn RngCore) -> u64 {
        let mean = self.n as f64 * self.p;
        let sd = (self.n as f64 * self.p * (1.0 - self.p)).sqrt();
        let u1 = open_unit(rng);
        let u2 = open_unit(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (mean + sd * z + 0.5).floor();
        v.clamp(0.0, self.n as f64) as u64
    }
}

impl Discrete for Binomial {
    fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            0.0
        } else {
            self.ln_pmf(k).exp()
        }
    }

    fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        // Regularized incomplete beta would be ideal; direct summation is
        // fine for the sizes the tests exercise.
        (0..=k).map(|i| self.pmf(i)).sum::<f64>().min(1.0)
    }

    fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        if self.p == 0.0 || self.n == 0 {
            return 0;
        }
        if self.p == 1.0 {
            return self.n;
        }
        if self.n <= 64 {
            self.sample_bernoulli_count(rng)
        } else if self.n as f64 * self.p.min(1.0 - self.p) <= 30.0 {
            if self.p <= 0.5 {
                self.sample_geometric_skip(rng)
            } else {
                // Count failures instead.
                let mirror = Self {
                    n: self.n,
                    p: 1.0 - self.p,
                };
                self.n - mirror.sample_geometric_skip(rng)
            }
        } else {
            self.sample_normal_approx(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_p() {
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.5).is_err());
    }

    #[test]
    fn degenerate_cases() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert_eq!(Binomial::new(10, 0.0).unwrap().sample(&mut rng), 0);
        assert_eq!(Binomial::new(10, 1.0).unwrap().sample(&mut rng), 10);
        assert_eq!(Binomial::new(0, 0.5).unwrap().sample(&mut rng), 0);
    }

    #[test]
    fn pmf_sums_to_one() {
        let b = Binomial::new(20, 0.3).unwrap();
        let total: f64 = (0..=20).map(|k| b.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn pmf_matches_pascal_triangle() {
        let b = Binomial::new(4, 0.5).unwrap();
        let expect = [1.0, 4.0, 6.0, 4.0, 1.0].map(|c| c / 16.0);
        for (k, e) in expect.iter().enumerate() {
            assert!((b.pmf(k as u64) - e).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn small_n_sampler_is_unbiased() {
        let b = Binomial::new(30, 0.2).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| b.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 6.0).abs() < 0.03, "mean={mean}");
    }

    #[test]
    fn geometric_skip_sampler_is_unbiased() {
        // n=1000, p=0.002 → n·p=2 ⇒ skip path.
        let b = Binomial::new(1000, 0.002).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| b.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean={mean}");
        // And P{K=0} ≈ 0.998^1000.
        let zeros = (0..n).filter(|_| b.sample(&mut rng) == 0).count() as f64 / n as f64;
        assert!((zeros - 0.998f64.powi(1000)).abs() < 0.01, "zeros={zeros}");
    }

    #[test]
    fn mirrored_skip_sampler_for_high_p() {
        let b = Binomial::new(1000, 0.998).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| b.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 998.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn normal_approx_sampler_is_unbiased() {
        // n=10^6, p=0.1 → np=10^5 ⇒ normal path.
        let b = Binomial::new(1_000_000, 0.1).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| b.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean / 100_000.0 - 1.0).abs() < 0.001, "mean={mean}");
    }
}
