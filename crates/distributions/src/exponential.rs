//! The exponential distribution.

use rand::RngCore;

use crate::{open_unit, Continuous, ParamError};

/// Exponential distribution with rate `λ` (mean `1/λ`).
///
/// Models service times at memcached servers and at the database in the
/// paper's `GI^X/M/1` and `M/M/1` stages, and doubles as the Poisson
/// inter-arrival law (the paper's `ξ = 0` burst-degree case).
///
/// # Examples
///
/// ```
/// use memlat_dist::{Continuous, Exponential};
/// # fn main() -> Result<(), memlat_dist::ParamError> {
/// let d = Exponential::new(80_000.0)?; // μ_S = 80 Kps
/// assert!((d.mean() - 12.5e-6).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `rate` is finite and positive.
    pub fn new(rate: f64) -> Result<Self, ParamError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(ParamError::new(format!(
                "exponential rate must be positive, got {rate}"
            )));
        }
        Ok(Self { rate })
    }

    /// Creates an exponential distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `mean` is finite and positive.
    pub fn with_mean(mean: f64) -> Result<Self, ParamError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(ParamError::new(format!(
                "exponential mean must be positive, got {mean}"
            )));
        }
        Self::new(1.0 / mean)
    }

    /// The rate parameter `λ`.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Exponential {
    /// Draws one sample through a concrete RNG type — the monomorphized
    /// twin of [`Continuous::sample`], bit-identical draw for draw.
    ///
    /// Uses the deterministic [`crate::simd::dln`] kernel so that scalar
    /// draws, bulk [`Self::fill`] blocks, and the AVX2 path all produce the
    /// same bits.
    #[inline]
    pub fn sample_with<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -crate::simd::dln(open_unit(rng)) / self.rate
    }

    /// Fills `out` with samples — bit-identical to `out.len()` successive
    /// [`Self::sample_with`] calls on the same RNG state.
    ///
    /// The uniforms are staged into the slice first (consuming the RNG in
    /// the scalar draw order), then the `ln` transform runs over the whole
    /// block through the SIMD-dispatched kernel.
    pub fn fill<R: RngCore + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for u in out.iter_mut() {
            *u = open_unit(rng);
        }
        crate::simd::exp_transform(out, self.rate);
    }
}

impl Continuous for Exponential {
    fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            -(-self.rate * t).exp_m1()
        }
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.sample_with(rng)
    }

    fn laplace(&self, s: f64) -> f64 {
        assert!(s >= 0.0, "laplace transform requires s >= 0, got {s}");
        self.rate / (self.rate + s)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&p),
            "quantile requires p in [0,1), got {p}"
        );
        -(-p).ln_1p() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::with_mean(f64::INFINITY).is_err());
    }

    #[test]
    fn moments() {
        let d = Exponential::new(4.0).unwrap();
        assert_eq!(d.mean(), 0.25);
        assert_eq!(d.variance(), 0.0625);
    }

    #[test]
    fn cdf_values() {
        let d = Exponential::new(1.0).unwrap();
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.cdf(0.0), 0.0);
        assert!((d.cdf(1.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-15);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Exponential::new(3.0).unwrap();
        for p in [0.0, 0.1, 0.5, 0.9, 0.999] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn laplace_matches_numeric_default() {
        let d = Exponential::new(2.5).unwrap();
        for s in [0.1, 1.0, 10.0] {
            let closed = d.laplace(s);
            let numeric = crate::laplace::numeric_laplace(&|t| d.cdf(t), s, d.mean());
            assert!((closed - numeric).abs() < 1e-10, "s={s}");
        }
    }

    #[test]
    fn sample_mean_converges() {
        let d = Exponential::new(2.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn memorylessness_of_samples() {
        // P{T > a+b | T > a} = P{T > b}: check via survival function.
        let d = Exponential::new(1.5).unwrap();
        let (a, b) = (0.4, 0.9);
        let lhs = d.survival(a + b) / d.survival(a);
        assert!((lhs - d.survival(b)).abs() < 1e-12);
    }
}
