//! The hyperexponential distribution (probabilistic mixture of
//! exponentials).

use rand::RngCore;

use crate::{open_unit, Continuous, ParamError};

/// Hyperexponential distribution: with probability `w_i`, the variate is
/// `Exp(λ_i)`.
///
/// Hyperexponentials are *more* variable than a single exponential
/// (coefficient of variation > 1), making them a light-weight stand-in for
/// bursty arrivals with a closed-form Laplace transform — handy for
/// validating the numeric-transform path used by the Generalized Pareto
/// law.
///
/// # Examples
///
/// ```
/// use memlat_dist::{Continuous, Hyperexponential};
/// # fn main() -> Result<(), memlat_dist::ParamError> {
/// let h = Hyperexponential::new(&[0.9, 0.1], &[10.0, 0.5])?;
/// // L(s) = Σ w_i λ_i/(λ_i + s)
/// let s = 2.0;
/// let expect = 0.9 * 10.0 / 12.0 + 0.1 * 0.5 / 2.5;
/// assert!((h.laplace(s) - expect).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Hyperexponential {
    weights: Vec<f64>,
    rates: Vec<f64>,
}

impl Hyperexponential {
    /// Creates a hyperexponential from mixture weights and per-phase rates.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if the slices differ in length or are empty,
    /// if any weight is negative or any rate non-positive, or if the
    /// weights do not sum to 1 (within 1e-9).
    pub fn new(weights: &[f64], rates: &[f64]) -> Result<Self, ParamError> {
        if weights.is_empty() || weights.len() != rates.len() {
            return Err(ParamError::new(
                "hyperexponential needs equal, non-zero numbers of weights and rates",
            ));
        }
        let sum: f64 = weights.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(ParamError::new(format!("weights must sum to 1, got {sum}")));
        }
        for &w in weights {
            if !(w.is_finite() && w >= 0.0) {
                return Err(ParamError::new(format!(
                    "weight must be non-negative, got {w}"
                )));
            }
        }
        for &r in rates {
            if !(r.is_finite() && r > 0.0) {
                return Err(ParamError::new(format!("rate must be positive, got {r}")));
            }
        }
        Ok(Self {
            weights: weights.to_vec(),
            rates: rates.to_vec(),
        })
    }

    /// Builds a two-phase hyperexponential with the given mean and squared
    /// coefficient of variation `scv > 1`, using balanced means.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `mean ≤ 0` or `scv ≤ 1`.
    pub fn with_mean_scv(mean: f64, scv: f64) -> Result<Self, ParamError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(ParamError::new(format!(
                "mean must be positive, got {mean}"
            )));
        }
        if !(scv.is_finite() && scv > 1.0) {
            return Err(ParamError::new(format!(
                "hyperexponential requires scv > 1, got {scv}"
            )));
        }
        // Balanced-means H2 fit (Whitt): p = (1 + sqrt((scv-1)/(scv+1)))/2.
        let p = 0.5 * (1.0 + ((scv - 1.0) / (scv + 1.0)).sqrt());
        let l1 = 2.0 * p / mean;
        let l2 = 2.0 * (1.0 - p) / mean;
        Self::new(&[p, 1.0 - p], &[l1, l2])
    }

    /// Number of phases.
    #[must_use]
    pub fn phases(&self) -> usize {
        self.rates.len()
    }
}

impl Hyperexponential {
    /// Draws one sample through a concrete RNG type — the monomorphized
    /// twin of [`Continuous::sample`], bit-identical draw for draw (the
    /// phase's exponential draw is inlined, same formula).
    #[inline]
    pub fn sample_with<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = open_unit(rng);
        let mut acc = 0.0;
        for (w, r) in self.weights.iter().zip(&self.rates) {
            acc += w;
            if u <= acc {
                return -crate::simd::dln(open_unit(rng)) / *r;
            }
        }
        // Floating-point slack: fall through to the last phase.
        -crate::simd::dln(open_unit(rng)) / *self.rates.last().expect("non-empty")
    }

    /// Fills `out` with samples — bit-identical to `out.len()` successive
    /// [`Self::sample_with`] calls on the same RNG state.
    ///
    /// The phase-selection draw makes the second uniform's transform
    /// data-dependent (each sample's rate depends on its own first draw),
    /// so there is no lane to batch: this is the scalar sampler in a
    /// loop, provided so every law shares the block entry point.
    pub fn fill<R: RngCore + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for x in out.iter_mut() {
            *x = self.sample_with(rng);
        }
    }
}

impl Continuous for Hyperexponential {
    fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        self.weights
            .iter()
            .zip(&self.rates)
            .map(|(w, r)| w * -(-r * t).exp_m1())
            .sum()
    }

    fn mean(&self) -> f64 {
        self.weights
            .iter()
            .zip(&self.rates)
            .map(|(w, r)| w / r)
            .sum()
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        let m2: f64 = self
            .weights
            .iter()
            .zip(&self.rates)
            .map(|(w, r)| 2.0 * w / (r * r))
            .sum();
        m2 - m * m
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.sample_with(rng)
    }

    fn laplace(&self, s: f64) -> f64 {
        assert!(s >= 0.0, "laplace transform requires s >= 0, got {s}");
        self.weights
            .iter()
            .zip(&self.rates)
            .map(|(w, r)| w * r / (r + s))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_params() {
        assert!(Hyperexponential::new(&[], &[]).is_err());
        assert!(Hyperexponential::new(&[0.5, 0.4], &[1.0, 2.0]).is_err()); // sum != 1
        assert!(Hyperexponential::new(&[0.5, 0.5], &[1.0]).is_err());
        assert!(Hyperexponential::new(&[0.5, 0.5], &[1.0, -2.0]).is_err());
        assert!(Hyperexponential::with_mean_scv(1.0, 0.5).is_err());
    }

    #[test]
    fn single_phase_is_exponential() {
        let h = Hyperexponential::new(&[1.0], &[3.0]).unwrap();
        let e = crate::Exponential::new(3.0).unwrap();
        for t in [0.1, 1.0, 2.0] {
            assert!((h.cdf(t) - e.cdf(t)).abs() < 1e-14);
        }
        assert!((h.mean() - e.mean()).abs() < 1e-15);
    }

    #[test]
    fn with_mean_scv_hits_targets() {
        let h = Hyperexponential::with_mean_scv(2.0, 4.0).unwrap();
        assert!((h.mean() - 2.0).abs() < 1e-12);
        let scv = h.variance() / (h.mean() * h.mean());
        assert!((scv - 4.0).abs() < 1e-9, "scv={scv}");
    }

    #[test]
    fn laplace_closed_vs_numeric() {
        let h = Hyperexponential::new(&[0.7, 0.3], &[5.0, 0.8]).unwrap();
        for s in [0.1, 1.0, 10.0] {
            let numeric = crate::laplace::numeric_laplace(&|t| h.cdf(t), s, h.mean());
            assert!((h.laplace(s) - numeric).abs() < 1e-10, "s={s}");
        }
    }

    #[test]
    fn sample_mean_converges() {
        let h = Hyperexponential::with_mean_scv(1.0, 9.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 400_000;
        let mean: f64 = (0..n).map(|_| h.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean={mean}");
    }
}
