//! The continuous uniform distribution on `[a, b]`, `0 ≤ a < b`.

use rand::RngCore;

use crate::{open_unit, Continuous, ParamError};

/// Uniform distribution on `[lo, hi]` with non-negative support.
///
/// Models jittered-but-bounded arrival pacing; a low-variability foil to
/// the heavy-tailed Generalized Pareto law in sensitivity sweeps.
///
/// # Examples
///
/// ```
/// use memlat_dist::{Continuous, Uniform};
/// # fn main() -> Result<(), memlat_dist::ParamError> {
/// let d = Uniform::new(0.0, 4.0)?;
/// assert_eq!(d.mean(), 2.0);
/// assert_eq!(d.cdf(1.0), 0.25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `0 ≤ lo < hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, ParamError> {
        if !(lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo < hi) {
            return Err(ParamError::new(format!(
                "uniform bounds must satisfy 0 <= lo < hi, got [{lo}, {hi}]"
            )));
        }
        Ok(Self { lo, hi })
    }

    /// Creates a uniform distribution on `[0, 2·mean]` (the maximum-entropy
    /// uniform with the given mean).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `mean` is finite and positive.
    pub fn with_mean(mean: f64) -> Result<Self, ParamError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(ParamError::new(format!(
                "uniform mean must be positive, got {mean}"
            )));
        }
        Self::new(0.0, 2.0 * mean)
    }

    /// Lower bound.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Uniform {
    /// Draws one sample through a concrete RNG type — the monomorphized
    /// twin of [`Continuous::sample`], bit-identical draw for draw.
    #[inline]
    pub fn sample_with<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + (self.hi - self.lo) * open_unit(rng)
    }

    /// Fills `out` with samples — bit-identical to `out.len()` successive
    /// [`Self::sample_with`] calls on the same RNG state: uniforms staged
    /// in scalar draw order, affine transform applied over the block.
    pub fn fill<R: RngCore + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for u in out.iter_mut() {
            *u = open_unit(rng);
        }
        for x in out.iter_mut() {
            *x = self.lo + (self.hi - self.lo) * *x;
        }
    }
}

impl Continuous for Uniform {
    fn cdf(&self, t: f64) -> f64 {
        ((t - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.sample_with(rng)
    }

    fn laplace(&self, s: f64) -> f64 {
        assert!(s >= 0.0, "laplace transform requires s >= 0, got {s}");
        if s == 0.0 {
            return 1.0;
        }
        let w = self.hi - self.lo;
        ((-s * self.lo).exp() - (-s * self.hi).exp()) / (s * w)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&p),
            "quantile requires p in [0,1), got {p}"
        );
        self.lo + p * (self.hi - self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_bounds() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(-0.5, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
    }

    #[test]
    fn with_mean_centers_correctly() {
        let d = Uniform::with_mean(3.0).unwrap();
        assert_eq!(d.mean(), 3.0);
        assert_eq!(d.lo(), 0.0);
        assert_eq!(d.hi(), 6.0);
    }

    #[test]
    fn laplace_closed_vs_numeric() {
        let d = Uniform::new(0.5, 2.5).unwrap();
        for s in [0.1, 1.0, 10.0] {
            let closed = d.laplace(s);
            let numeric = crate::laplace::numeric_laplace(&|t| d.cdf(t), s, d.mean());
            assert!((closed - numeric).abs() < 1e-10, "s={s}");
        }
    }

    #[test]
    fn samples_within_bounds() {
        let d = Uniform::new(1.0, 2.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((1.0..2.0).contains(&x));
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Uniform::new(0.0, 10.0).unwrap();
        for p in [0.0, 0.25, 0.5, 0.75, 0.99] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-12);
        }
    }
}
