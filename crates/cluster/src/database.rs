//! The database stage: sharded M/M/1 queues fed by cache misses.

use std::collections::HashMap;

use memlat_des::fcfs::FcfsStation;
use memlat_dist::{Binomial, Discrete};
use rand::RngCore;

/// Sentinel key id for misses that carry no key identity (fixed-ratio
/// coin flips, forced misses from degraded requests). A `NO_KEY` miss
/// never coalesces: it always dispatches its own database fetch.
pub const NO_KEY: u64 = u64::MAX;

/// A missed key arriving at the database layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissArrival {
    /// When the miss reaches the database (the key's completion time at
    /// its memcached server).
    pub time: f64,
    /// Which server / record the latency should be written back to.
    pub origin: (u32, u32),
    /// The key that missed, or [`NO_KEY`] when the miss has no key
    /// identity. Only meaningful to the coalescing relay.
    pub key: u64,
}

/// Runs the sharded database stage over a **time-sorted** stream of
/// misses; returns `(origin, db_latency)` pairs.
///
/// Shards are independent `M/M/1` queues with service rate `mu_d`;
/// misses are assigned round-robin (the paper assumes the database layer
/// is balanced — §3's "the variation of load size among database servers
/// becomes negligible").
///
/// # Panics
///
/// Panics if the misses are not sorted by time, `shards == 0`, or
/// `mu_d ≤ 0`.
pub fn run_db_stage(
    misses: &[MissArrival],
    shards: usize,
    mu_d: f64,
    rng: &mut dyn RngCore,
) -> Vec<((u32, u32), f64)> {
    let mut out = Vec::with_capacity(misses.len());
    run_db_stage_with(misses, shards, mu_d, rng, |origin, d| out.push((origin, d)));
    out
}

/// Streaming variant of [`run_db_stage`]: delivers each `(origin,
/// db_latency)` to `sink` as it is computed instead of materializing a
/// vector. RNG consumption and outcomes are identical to
/// [`run_db_stage`], so the two are interchangeable for a fixed seed.
///
/// # Panics
///
/// Same contract as [`run_db_stage`].
pub fn run_db_stage_with(
    misses: &[MissArrival],
    shards: usize,
    mu_d: f64,
    rng: &mut dyn RngCore,
    mut sink: impl FnMut((u32, u32), f64),
) {
    assert!(shards > 0, "need at least one database shard");
    assert!(mu_d > 0.0, "database service rate must be positive");
    let mut stations: Vec<FcfsStation> = (0..shards).map(|_| FcfsStation::new()).collect();
    let mut next = 0usize;
    let mut prev_t = f64::NEG_INFINITY;
    for m in misses {
        assert!(m.time >= prev_t, "misses must be sorted by time");
        prev_t = m.time;
        let svc = -memlat_dist::simd::dln(memlat_dist::open_unit(rng)) / mu_d;
        let shard = next;
        next = (next + 1) % shards;
        let done = stations[shard].submit(m.time, svc);
        sink(m.origin, done.sojourn());
    }
}

/// Coalescing variant of [`run_db_stage_with`]: per-key outstanding-fetch
/// tracking with delayed hits.
///
/// The first miss for a key dispatches a database fetch exactly like
/// [`run_db_stage_with`]. While that fetch is outstanding (its departure
/// time lies in the future), every later miss for the same key parks as a
/// waiter and resolves at the fetch's completion — a **delayed hit**
/// whose latency is the residual `completion − arrival`, drawn from no
/// RNG at all. Once the fetch completes, the next miss for the key
/// dispatches afresh (the cache-backed store already decided the key was
/// evicted again).
///
/// `sink` receives `(origin, db_latency, delayed)` where `delayed` marks
/// delayed hits. [`NO_KEY`] misses never coalesce, so on a stream of only
/// `NO_KEY` misses this function consumes the RNG identically to
/// [`run_db_stage_with`] and produces the same latencies — the basis of
/// the coalescing-off differential suite.
///
/// # Panics
///
/// Same contract as [`run_db_stage`].
pub fn run_db_stage_coalesced_with(
    misses: &[MissArrival],
    shards: usize,
    mu_d: f64,
    rng: &mut dyn RngCore,
    mut sink: impl FnMut((u32, u32), f64, bool),
) {
    assert!(shards > 0, "need at least one database shard");
    assert!(mu_d > 0.0, "database service rate must be positive");
    let mut stations: Vec<FcfsStation> = (0..shards).map(|_| FcfsStation::new()).collect();
    // Completion time of the outstanding fetch per key. Entries whose
    // departure is in the past are stale (the fetch already landed) and
    // are overwritten on the next dispatch for that key.
    let mut outstanding: HashMap<u64, f64> = HashMap::new();
    let mut next = 0usize;
    let mut prev_t = f64::NEG_INFINITY;
    for m in misses {
        assert!(m.time >= prev_t, "misses must be sorted by time");
        prev_t = m.time;
        if m.key != NO_KEY {
            if let Some(&done_at) = outstanding.get(&m.key) {
                if done_at > m.time {
                    sink(m.origin, done_at - m.time, true);
                    continue;
                }
            }
        }
        let svc = -memlat_dist::simd::dln(memlat_dist::open_unit(rng)) / mu_d;
        let shard = next;
        next = (next + 1) % shards;
        let done = stations[shard].submit(m.time, svc);
        if m.key != NO_KEY {
            outstanding.insert(m.key, done.departure);
        }
        sink(m.origin, done.sojourn(), false);
    }
}

/// Statistics of a db-only experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbExperimentResult {
    /// Mean of `T_D(N) = max_i d_i` over the simulated requests.
    pub mean_td: f64,
    /// Fraction of requests with at least one miss.
    pub frac_any_miss: f64,
    /// Mean number of missed keys per request.
    pub mean_misses: f64,
}

/// Fast path for the paper's Figs. 11 and 13: simulates only the
/// database stage.
///
/// Per the model (§3), misses form a Poisson stream at the database; each
/// request contributes `K ~ Bin(N, r)` of them. We simulate `requests`
/// requests: draw `K`, draw `K` sojourn times from a lightly loaded
/// `M/M/1` (the shard count keeps `ρ_D` at the paper's "greatly
/// offloaded" level), and record `max_i d_i`.
///
/// The M/M/1 sojourn under `ρ ≪ 1` is `Exp((1−ρ)μ_D)`; we draw from that
/// law directly with the configured shard utilization, which is exactly
/// the regime the paper's eq. 19 assumes.
///
/// # Panics
///
/// Panics if `r ∉ [0, 1]` or `mu_d ≤ 0`.
pub fn db_only_experiment(
    n: u64,
    r: f64,
    mu_d: f64,
    shard_utilization: f64,
    requests: usize,
    rng: &mut dyn RngCore,
) -> DbExperimentResult {
    assert!((0.0..=1.0).contains(&r), "miss ratio out of range: {r}");
    assert!(mu_d > 0.0, "database service rate must be positive");
    assert!(
        (0.0..1.0).contains(&shard_utilization),
        "shard utilization must be in [0,1)"
    );
    let k_dist = Binomial::new(n, r).expect("validated");
    let effective_rate = (1.0 - shard_utilization) * mu_d;
    let mut sum_td = 0.0;
    let mut any = 0u64;
    let mut total_k = 0u64;
    for _ in 0..requests {
        let k = k_dist.sample(rng);
        total_k += k;
        if k == 0 {
            continue;
        }
        any += 1;
        let mut worst = 0.0f64;
        for _ in 0..k {
            let d = -memlat_dist::simd::dln(memlat_dist::open_unit(rng)) / effective_rate;
            worst = worst.max(d);
        }
        sum_td += worst;
    }
    DbExperimentResult {
        mean_td: sum_td / requests as f64,
        frac_any_miss: any as f64 / requests as f64,
        mean_misses: total_k as f64 / requests as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn db_stage_is_fcfs_per_shard() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let misses: Vec<MissArrival> = (0..100)
            .map(|i| MissArrival {
                time: i as f64 * 1e-4,
                origin: (0, i),
                key: NO_KEY,
            })
            .collect();
        let out = run_db_stage(&misses, 4, 1_000.0, &mut rng);
        assert_eq!(out.len(), 100);
        assert!(out.iter().all(|&(_, d)| d > 0.0));
    }

    #[test]
    fn streaming_variant_is_identical() {
        let misses: Vec<MissArrival> = (0..500)
            .map(|i| MissArrival {
                time: f64::from(i) * 2e-4,
                origin: (1, i),
                key: NO_KEY,
            })
            .collect();
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(7);
        let vec_form = run_db_stage(&misses, 3, 1_000.0, &mut rng_a);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(7);
        let mut streamed = Vec::new();
        run_db_stage_with(&misses, 3, 1_000.0, &mut rng_b, |o, d| {
            streamed.push((o, d))
        });
        assert_eq!(vec_form, streamed);
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn db_stage_rejects_unsorted() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let misses = vec![
            MissArrival {
                time: 1.0,
                origin: (0, 0),
                key: NO_KEY,
            },
            MissArrival {
                time: 0.5,
                origin: (0, 1),
                key: NO_KEY,
            },
        ];
        let _ = run_db_stage(&misses, 1, 1_000.0, &mut rng);
    }

    #[test]
    fn db_stage_mean_matches_mm1_when_offloaded() {
        // Poisson misses at 50/s over 10 shards of μ=1000/s ⇒ per-shard
        // ρ = 0.005; sojourn ≈ 1 ms.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut t = 0.0;
        let misses: Vec<MissArrival> = (0..20_000)
            .map(|i| {
                t += -memlat_dist::open_unit(&mut rng).ln() / 50.0;
                MissArrival {
                    time: t,
                    origin: (0, i),
                    key: NO_KEY,
                }
            })
            .collect();
        let out = run_db_stage(&misses, 10, 1_000.0, &mut rng);
        let mean: f64 = out.iter().map(|&(_, d)| d).sum::<f64>() / out.len() as f64;
        assert!((mean * 1e3 - 1.0).abs() < 0.05, "mean={}", mean * 1e3);
    }

    #[test]
    fn coalesced_matches_independent_on_keyless_stream() {
        // A NO_KEY-only stream never coalesces: RNG consumption and every
        // latency must be identical to the legacy stage.
        let misses: Vec<MissArrival> = (0..800)
            .map(|i| MissArrival {
                time: f64::from(i) * 1.3e-4,
                origin: (2, i),
                key: NO_KEY,
            })
            .collect();
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(11);
        let legacy = run_db_stage(&misses, 5, 1_000.0, &mut rng_a);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(11);
        let mut coalesced = Vec::new();
        run_db_stage_coalesced_with(&misses, 5, 1_000.0, &mut rng_b, |o, d, delayed| {
            assert!(!delayed, "keyless miss flagged as delayed hit");
            coalesced.push((o, d));
        });
        assert_eq!(legacy, coalesced);
        // Both RNGs must have advanced identically.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn coalesced_collapses_concurrent_same_key_misses() {
        // Three misses for key 7 land 0.1 ms apart; μ_D = 100/s makes the
        // fetch ~10 ms, so the later two must park as delayed hits with
        // exact residual latencies.
        let misses = vec![
            MissArrival {
                time: 0.0,
                origin: (0, 0),
                key: 7,
            },
            MissArrival {
                time: 1e-4,
                origin: (0, 1),
                key: 7,
            },
            MissArrival {
                time: 2e-4,
                origin: (1, 0),
                key: 7,
            },
        ];
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut out = Vec::new();
        run_db_stage_coalesced_with(&misses, 2, 100.0, &mut rng, |o, d, delayed| {
            out.push((o, d, delayed));
        });
        assert_eq!(out.len(), 3);
        let (_, fetch, delayed0) = out[0];
        assert!(!delayed0);
        // Residuals: completion = fetch (arrival 0, empty station), so the
        // waiter at t has latency fetch − t exactly.
        assert_eq!(out[1], ((0, 1), fetch - 1e-4, true));
        assert_eq!(out[2], ((1, 0), fetch - 2e-4, true));
        // A fourth miss after the fetch completed dispatches afresh.
        let late = vec![
            misses[0],
            MissArrival {
                time: fetch + 1.0,
                origin: (3, 3),
                key: 7,
            },
        ];
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut flags = Vec::new();
        run_db_stage_coalesced_with(&late, 2, 100.0, &mut rng, |_, _, delayed| {
            flags.push(delayed);
        });
        assert_eq!(flags, vec![false, false]);
    }

    #[test]
    fn coalesced_distinct_keys_do_not_interact() {
        let misses: Vec<MissArrival> = (0..50)
            .map(|i| MissArrival {
                time: f64::from(i) * 1e-6,
                origin: (0, i),
                key: u64::from(i),
            })
            .collect();
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(21);
        let legacy = run_db_stage(&misses, 3, 1_000.0, &mut rng_a);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(21);
        let mut out = Vec::new();
        run_db_stage_coalesced_with(&misses, 3, 1_000.0, &mut rng_b, |o, d, delayed| {
            assert!(!delayed);
            out.push((o, d));
        });
        assert_eq!(legacy, out);
    }

    #[test]
    fn db_only_matches_eq23_table3() {
        // N=150, r=0.01, 1/μ_D = 1 ms: the paper's Theorem-1 value is
        // 836 µs; its own measurement was 867 µs. The exact-in-model
        // value (binomial × harmonic) is what the simulation estimates.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let res = db_only_experiment(150, 0.01, 1_000.0, 0.0, 200_000, &mut rng);
        let exact = memlat_model::database::db_latency_mean_exact(150, 0.01, 1_000.0);
        assert!(
            (res.mean_td / exact - 1.0).abs() < 0.03,
            "sim={} vs exact-model={}",
            res.mean_td,
            exact
        );
        // Eq. 23's approximation (836 µs) sits ~23% *below* the exact
        // value (~1084 µs); the paper's own measurement (867 µs) is near
        // the approximation — see EXPERIMENTS.md for the discussion.
        let eq23 = memlat_model::database::db_latency_mean(150, 0.01, 1_000.0);
        assert!(
            res.mean_td > eq23,
            "simulation should exceed the eq. 23 estimate"
        );
        assert!(res.mean_td < 1.45 * eq23);
        assert!((res.frac_any_miss - 0.7785).abs() < 0.01);
        assert!((res.mean_misses - 1.5).abs() < 0.05);
    }

    #[test]
    fn db_only_zero_misses() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let res = db_only_experiment(100, 0.0, 1_000.0, 0.0, 1_000, &mut rng);
        assert_eq!(res.mean_td, 0.0);
        assert_eq!(res.frac_any_miss, 0.0);
    }
}
