//! The database stage: sharded M/M/1 queues fed by cache misses.

use memlat_des::fcfs::FcfsStation;
use memlat_dist::{Binomial, Discrete};
use rand::RngCore;

/// A missed key arriving at the database layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissArrival {
    /// When the miss reaches the database (the key's completion time at
    /// its memcached server).
    pub time: f64,
    /// Which server / record the latency should be written back to.
    pub origin: (u32, u32),
}

/// Runs the sharded database stage over a **time-sorted** stream of
/// misses; returns `(origin, db_latency)` pairs.
///
/// Shards are independent `M/M/1` queues with service rate `mu_d`;
/// misses are assigned round-robin (the paper assumes the database layer
/// is balanced — §3's "the variation of load size among database servers
/// becomes negligible").
///
/// # Panics
///
/// Panics if the misses are not sorted by time, `shards == 0`, or
/// `mu_d ≤ 0`.
pub fn run_db_stage(
    misses: &[MissArrival],
    shards: usize,
    mu_d: f64,
    rng: &mut dyn RngCore,
) -> Vec<((u32, u32), f64)> {
    let mut out = Vec::with_capacity(misses.len());
    run_db_stage_with(misses, shards, mu_d, rng, |origin, d| out.push((origin, d)));
    out
}

/// Streaming variant of [`run_db_stage`]: delivers each `(origin,
/// db_latency)` to `sink` as it is computed instead of materializing a
/// vector. RNG consumption and outcomes are identical to
/// [`run_db_stage`], so the two are interchangeable for a fixed seed.
///
/// # Panics
///
/// Same contract as [`run_db_stage`].
pub fn run_db_stage_with(
    misses: &[MissArrival],
    shards: usize,
    mu_d: f64,
    rng: &mut dyn RngCore,
    mut sink: impl FnMut((u32, u32), f64),
) {
    assert!(shards > 0, "need at least one database shard");
    assert!(mu_d > 0.0, "database service rate must be positive");
    let mut stations: Vec<FcfsStation> = (0..shards).map(|_| FcfsStation::new()).collect();
    let mut next = 0usize;
    let mut prev_t = f64::NEG_INFINITY;
    for m in misses {
        assert!(m.time >= prev_t, "misses must be sorted by time");
        prev_t = m.time;
        let svc = -memlat_dist::open_unit(rng).ln() / mu_d;
        let shard = next;
        next = (next + 1) % shards;
        let done = stations[shard].submit(m.time, svc);
        sink(m.origin, done.sojourn());
    }
}

/// Statistics of a db-only experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbExperimentResult {
    /// Mean of `T_D(N) = max_i d_i` over the simulated requests.
    pub mean_td: f64,
    /// Fraction of requests with at least one miss.
    pub frac_any_miss: f64,
    /// Mean number of missed keys per request.
    pub mean_misses: f64,
}

/// Fast path for the paper's Figs. 11 and 13: simulates only the
/// database stage.
///
/// Per the model (§3), misses form a Poisson stream at the database; each
/// request contributes `K ~ Bin(N, r)` of them. We simulate `requests`
/// requests: draw `K`, draw `K` sojourn times from a lightly loaded
/// `M/M/1` (the shard count keeps `ρ_D` at the paper's "greatly
/// offloaded" level), and record `max_i d_i`.
///
/// The M/M/1 sojourn under `ρ ≪ 1` is `Exp((1−ρ)μ_D)`; we draw from that
/// law directly with the configured shard utilization, which is exactly
/// the regime the paper's eq. 19 assumes.
///
/// # Panics
///
/// Panics if `r ∉ [0, 1]` or `mu_d ≤ 0`.
pub fn db_only_experiment(
    n: u64,
    r: f64,
    mu_d: f64,
    shard_utilization: f64,
    requests: usize,
    rng: &mut dyn RngCore,
) -> DbExperimentResult {
    assert!((0.0..=1.0).contains(&r), "miss ratio out of range: {r}");
    assert!(mu_d > 0.0, "database service rate must be positive");
    assert!(
        (0.0..1.0).contains(&shard_utilization),
        "shard utilization must be in [0,1)"
    );
    let k_dist = Binomial::new(n, r).expect("validated");
    let effective_rate = (1.0 - shard_utilization) * mu_d;
    let mut sum_td = 0.0;
    let mut any = 0u64;
    let mut total_k = 0u64;
    for _ in 0..requests {
        let k = k_dist.sample(rng);
        total_k += k;
        if k == 0 {
            continue;
        }
        any += 1;
        let mut worst = 0.0f64;
        for _ in 0..k {
            let d = -memlat_dist::open_unit(rng).ln() / effective_rate;
            worst = worst.max(d);
        }
        sum_td += worst;
    }
    DbExperimentResult {
        mean_td: sum_td / requests as f64,
        frac_any_miss: any as f64 / requests as f64,
        mean_misses: total_k as f64 / requests as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn db_stage_is_fcfs_per_shard() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let misses: Vec<MissArrival> = (0..100)
            .map(|i| MissArrival {
                time: i as f64 * 1e-4,
                origin: (0, i),
            })
            .collect();
        let out = run_db_stage(&misses, 4, 1_000.0, &mut rng);
        assert_eq!(out.len(), 100);
        assert!(out.iter().all(|&(_, d)| d > 0.0));
    }

    #[test]
    fn streaming_variant_is_identical() {
        let misses: Vec<MissArrival> = (0..500)
            .map(|i| MissArrival {
                time: f64::from(i) * 2e-4,
                origin: (1, i),
            })
            .collect();
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(7);
        let vec_form = run_db_stage(&misses, 3, 1_000.0, &mut rng_a);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(7);
        let mut streamed = Vec::new();
        run_db_stage_with(&misses, 3, 1_000.0, &mut rng_b, |o, d| {
            streamed.push((o, d))
        });
        assert_eq!(vec_form, streamed);
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn db_stage_rejects_unsorted() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let misses = vec![
            MissArrival {
                time: 1.0,
                origin: (0, 0),
            },
            MissArrival {
                time: 0.5,
                origin: (0, 1),
            },
        ];
        let _ = run_db_stage(&misses, 1, 1_000.0, &mut rng);
    }

    #[test]
    fn db_stage_mean_matches_mm1_when_offloaded() {
        // Poisson misses at 50/s over 10 shards of μ=1000/s ⇒ per-shard
        // ρ = 0.005; sojourn ≈ 1 ms.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut t = 0.0;
        let misses: Vec<MissArrival> = (0..20_000)
            .map(|i| {
                t += -memlat_dist::open_unit(&mut rng).ln() / 50.0;
                MissArrival {
                    time: t,
                    origin: (0, i),
                }
            })
            .collect();
        let out = run_db_stage(&misses, 10, 1_000.0, &mut rng);
        let mean: f64 = out.iter().map(|&(_, d)| d).sum::<f64>() / out.len() as f64;
        assert!((mean * 1e3 - 1.0).abs() < 0.05, "mean={}", mean * 1e3);
    }

    #[test]
    fn db_only_matches_eq23_table3() {
        // N=150, r=0.01, 1/μ_D = 1 ms: the paper's Theorem-1 value is
        // 836 µs; its own measurement was 867 µs. The exact-in-model
        // value (binomial × harmonic) is what the simulation estimates.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let res = db_only_experiment(150, 0.01, 1_000.0, 0.0, 200_000, &mut rng);
        let exact = memlat_model::database::db_latency_mean_exact(150, 0.01, 1_000.0);
        assert!(
            (res.mean_td / exact - 1.0).abs() < 0.03,
            "sim={} vs exact-model={}",
            res.mean_td,
            exact
        );
        // Eq. 23's approximation (836 µs) sits ~23% *below* the exact
        // value (~1084 µs); the paper's own measurement (867 µs) is near
        // the approximation — see EXPERIMENTS.md for the discussion.
        let eq23 = memlat_model::database::db_latency_mean(150, 0.01, 1_000.0);
        assert!(
            res.mean_td > eq23,
            "simulation should exceed the eq. 23 estimate"
        );
        assert!(res.mean_td < 1.45 * eq23);
        assert!((res.frac_any_miss - 0.7785).abs() < 0.01);
        assert!((res.mean_misses - 1.5).abs() < 0.05);
    }

    #[test]
    fn db_only_zero_misses() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let res = db_only_experiment(100, 0.0, 1_000.0, 0.0, 1_000, &mut rng);
        assert_eq!(res.mean_td, 0.0);
        assert_eq!(res.frac_any_miss, 0.0);
    }
}
