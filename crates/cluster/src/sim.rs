//! The cluster simulation: M servers → sharded database.
//!
//! The per-server simulations are embarrassingly parallel *by
//! construction*: server `j` draws every random number from its own
//! seed-derived stream (`stream_rng(seed, 1000 + j)`), and the database
//! stage consumes the merged miss stream in a fixed, execution-order
//! independent order. [`ClusterSim::run`] therefore dispatches servers
//! across [`SimConfig::threads`] worker threads and still produces
//! **bit-identical** output to the sequential path for a fixed seed.
//!
//! The per-key hot path is **streaming and block-batched**: each
//! server's resolved keys flow from [`simulate_server_streaming_with`]
//! straight into the per-server summaries (and, only when the retention
//! policy or hedging needs them, into reusable [`KeyColumns`] buffers),
//! a [`SimConfig::effective_block`]-sized lane block at a time on
//! eligible runs. Under [`Retention::Summary`] without hedging, peak
//! memory is `O(servers + block + sketch)` — independent of the key
//! count. Sweeps can pass one [`SimScratch`] to
//! [`ClusterSim::run_with`] to reuse every per-server buffer across
//! runs.

use memlat_des::metrics::{CoalesceCounters, ResilienceCounters, ServerCounters};
use memlat_des::rng::stream_rng;
use memlat_stats::{Ecdf, QuantileSketch, StreamingStats};
use rand::RngCore;

use memlat_workload::{RoutedKeyspace, ZipfPopularity};

use crate::{
    columns::KeyColumns,
    config::{CacheRouting, MissMode, MissRelay, Retention, SimConfig},
    database::{run_db_stage_coalesced_with, run_db_stage_with, MissArrival, NO_KEY},
    fault::hedge_outcome,
    miss::RoutedHandle,
    server::{
        simulate_server_streaming_with, BlockScratch, KeyBlock, KeyRecord, RecordSink,
        ServerSimParams,
    },
    SimError,
};

/// The orchestrator: runs every memcached server, merges the cache-miss
/// streams into the sharded database, and produces a [`SimOutput`].
#[derive(Debug)]
pub struct ClusterSim;

/// Streaming summary of one server's run: always collected, independent
/// of the [`Retention`] policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSummary {
    /// Welford statistics of the per-key server latency `s`.
    pub latency: StreamingStats,
    /// Quantile sketch of `s` (≤ 1% relative error, exactly mergeable).
    pub sketch: QuantileSketch,
    /// Welford statistics of `s` over keys served inside a slowdown
    /// window (empty on healthy runs).
    pub degraded_latency: StreamingStats,
    /// Welford statistics of `s` over keys served outside any slowdown
    /// window (equals [`Self::latency`] on healthy runs).
    pub healthy_latency: StreamingStats,
    /// Busy time, queue high-water mark, jobs, misses.
    pub counters: ServerCounters,
    /// Fault and client-resilience counters (all zero on healthy runs).
    pub resilience: ResilienceCounters,
    /// Miss-coalescing counters for this server's database trips:
    /// fetches dispatched, delayed hits (misses that waited on an
    /// outstanding fetch for the same key), and total wait time. All
    /// zero under [`MissRelay::Independent`].
    pub coalesce: CoalesceCounters,
    /// Observed utilization (busy time ÷ horizon).
    pub utilization: f64,
    /// Items resident in this server's backing store at the end of the
    /// run (0 under [`MissMode::FixedRatio`]). Summed across servers
    /// this is the cluster capacity `x` of the Ji/Quan/Tan asymptotic.
    pub cached_items: u64,
}

impl ServerSummary {
    fn empty() -> Self {
        Self {
            latency: StreamingStats::new(),
            sketch: QuantileSketch::new(),
            degraded_latency: StreamingStats::new(),
            healthy_latency: StreamingStats::new(),
            counters: ServerCounters::default(),
            resilience: ResilienceCounters::default(),
            coalesce: CoalesceCounters::default(),
            utilization: 0.0,
            cached_items: 0,
        }
    }
}

/// What one server worker hands back to the merge step (the bulky
/// per-key data stays in the worker's [`ServerCell`]).
struct ServerOutcome {
    /// Keys recorded (post-warm-up).
    keys: u64,
    summary: ServerSummary,
}

const FLAG_FORCED: u8 = 1;
const FLAG_DEGRADED: u8 = 2;

/// One server's reusable per-key buffers.
#[derive(Debug, Default)]
struct ServerCell {
    /// `(s, d)` columns in arrival order (db latency filled in later).
    /// Populated only when the retention policy or hedging needs them.
    cols: KeyColumns,
    /// Per-record forced/degraded flags, kept only when hedging needs to
    /// rebuild the summaries after the merge-step min pass.
    flags: Vec<u8>,
    /// Missed keys: arrival time at the database + origin `(server, idx)`,
    /// time-sorted by the worker before the merge step.
    misses: Vec<MissArrival>,
}

/// The per-server streaming fold: consumes resolved keys (one at a time
/// or a lane block at a time) into the summaries, miss stream and
/// optional per-key columns. Living behind [`RecordSink`] instead of a
/// closure lets the block path push whole slices into the Welford
/// accumulator, sketch and columns.
struct WorkerSink<'a> {
    j: u32,
    idx: u32,
    plain_run: bool,
    keep_pairs: bool,
    hedging: bool,
    misses: &'a mut Vec<MissArrival>,
    cols: &'a mut KeyColumns,
    flags: &'a mut Vec<u8>,
    latency: StreamingStats,
    sketch: QuantileSketch,
    degraded_latency: StreamingStats,
    healthy_latency: StreamingStats,
}

impl RecordSink for WorkerSink<'_> {
    fn record(&mut self, r: &KeyRecord) {
        // Forced misses fall through to the database too: the cache
        // tier failed them, the backing store answers.
        if r.missed || r.forced {
            self.misses.push(MissArrival {
                time: r.completion,
                origin: (self.j, self.idx),
                // Forced misses never sampled a key; regular misses carry
                // whatever identity the decider drew (NO_KEY on the
                // fixed-ratio path).
                key: if r.forced { NO_KEY } else { r.key },
            });
        }
        self.latency.push(r.server_latency);
        self.sketch.push(r.server_latency);
        if self.plain_run {
            // healthy_latency == latency; copied after the run.
        } else if r.forced {
            // Neither split: the key was never served here.
        } else if r.degraded {
            self.degraded_latency.push(r.server_latency);
        } else {
            self.healthy_latency.push(r.server_latency);
        }
        if self.keep_pairs {
            self.cols.push_server(r.server_latency as f32);
        }
        if self.hedging {
            self.flags.push(
                if r.forced { FLAG_FORCED } else { 0 } | if r.degraded { FLAG_DEGRADED } else { 0 },
            );
        }
        self.idx += 1;
    }

    fn record_block(&mut self, b: &KeyBlock<'_>) {
        // Blocks only arrive on eligible runs (no faults, no timeout),
        // which are exactly the plain runs: no forced/degraded keys, so
        // the healthy split is the pooled stream (copied after the run)
        // and every hedge flag is zero.
        debug_assert!(self.plain_run);
        for (i, &missed) in b.missed.iter().enumerate() {
            if missed {
                self.misses.push(MissArrival {
                    time: b.completion[i],
                    origin: (self.j, self.idx + i as u32),
                    // Blocks exist only on the fixed-ratio path: no key.
                    key: NO_KEY,
                });
            }
        }
        self.latency.push_slice(b.latency);
        self.sketch.push_slice(b.latency);
        if self.keep_pairs {
            self.cols.extend_server(b.latency);
        }
        if self.hedging {
            self.flags.resize(self.flags.len() + b.len(), 0);
        }
        self.idx += b.len() as u32;
    }
}

/// Reusable simulation buffers: every allocation whose size scales with
/// the key count lives here, so a sweep that calls
/// [`ClusterSim::run_with`] with the same scratch allocates per-key
/// memory once and reuses it at every sweep point.
///
/// # Examples
///
/// ```
/// use memlat_cluster::{ClusterSim, SimConfig, SimScratch};
/// use memlat_model::ModelParams;
///
/// # fn main() -> Result<(), memlat_cluster::SimError> {
/// let mut scratch = SimScratch::new();
/// for seed in [1, 2] {
///     let params = ModelParams::builder().build()?;
///     let cfg = SimConfig::new(params).duration(0.2).seed(seed);
///     let out = ClusterSim::run_with(&cfg, &mut scratch)?;
///     assert!(out.total_keys() > 0);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Per-server cells, stored lane-major for the thread dispatch (see
    /// [`lane_pos`]).
    cells: Vec<ServerCell>,
    /// Staging lanes for the block-batched server hot path: one per
    /// worker lane, not per server. A lane simulates its servers one at
    /// a time, so sharing keeps the block scratch footprint
    /// `O(threads × block)` instead of `O(servers × block)` — at
    /// M = 10 000 servers the per-server layout dominated peak memory.
    blocks: Vec<BlockScratch>,
    /// Pre-hedge per-server latency populations (hedging only).
    pristine: Vec<Vec<f32>>,
    /// The merged miss stream.
    misses: Vec<MissArrival>,
    /// Cached Zipf popularity (alias table) keyed by
    /// `(keyspace, skew bits)`: the O(keyspace) alias build happens once
    /// per scratch per configuration, not once per server per sweep
    /// point.
    zipf: Option<((u64, u64), std::sync::Arc<ZipfPopularity>)>,
    /// Cached consistent-hash routing table keyed by
    /// `(keyspace, skew bits, servers, vnodes)`: the O(keyspace) ring
    /// walk and conditional-sampler builds happen once per scratch per
    /// cluster configuration.
    routed: Option<((u64, u64, u64, u64), std::sync::Arc<RoutedKeyspace>)>,
}

impl SimScratch {
    /// Creates an empty scratch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Everything a simulation run produces.
#[derive(Debug)]
pub struct SimOutput {
    /// Per-server `(s, d)` columns in arrival order; `None` under
    /// [`Retention::Summary`].
    server_records: Option<Vec<KeyColumns>>,
    /// Always-on per-server streaming summaries.
    summaries: Vec<ServerSummary>,
    /// Welford statistics of db latency over the missed keys.
    db_latency: StreamingStats,
    /// Quantile sketch of db latency over the missed keys.
    db_sketch: QuantileSketch,
    /// Load shares used (for request assembly).
    shares: Vec<f64>,
    /// Constant network latency.
    network: f64,
    /// Observed per-server utilization.
    utilization: Vec<f64>,
    /// Observed overall miss ratio.
    miss_ratio: f64,
    /// Keys recorded.
    total_keys: u64,
}

impl ClusterSim {
    /// Runs the full simulation with one-shot buffers.
    ///
    /// # Errors
    ///
    /// Propagates configuration and model errors.
    pub fn run(cfg: &SimConfig) -> Result<SimOutput, SimError> {
        Self::run_with(cfg, &mut SimScratch::new())
    }

    /// Runs the full simulation, reusing `scratch`'s buffers.
    ///
    /// Output is bit-identical to [`ClusterSim::run`]; sweeps that run
    /// many configurations pass the same scratch to skip re-growing the
    /// per-key buffers at every point.
    ///
    /// # Errors
    ///
    /// Propagates configuration and model errors.
    pub fn run_with(cfg: &SimConfig, scratch: &mut SimScratch) -> Result<SimOutput, SimError> {
        cfg.validate()?;
        let params = &cfg.params;
        // The DES would happily simulate an overloaded server, but every
        // stationary estimator downstream would silently depend on the
        // horizon; refuse, like the analytical model does.
        let peak = params.peak_utilization()?;
        if peak >= 1.0 {
            return Err(SimError::InvalidConfig(format!(
                "peak server utilization {peak:.3} >= 1: no stationary regime"
            )));
        }
        let mut shares = params.load().shares(params.servers())?;
        let q = params.concurrency();
        let servers = shares.len();
        let threads = cfg.effective_threads().clamp(1, servers.max(1));

        let hedging = cfg.client.hedge.is_some();
        let keep_records = cfg.retention == Retention::Full;
        // The per-key columns are needed for the output (Full retention)
        // and for the hedge pass's replica populations; otherwise the
        // run is fully streaming and no per-key buffer is touched.
        let keep_pairs = keep_records || hedging;

        let SimScratch {
            cells,
            blocks,
            pristine,
            misses: all_misses,
            zipf,
            routed,
        } = scratch;
        if cells.len() < servers {
            cells.resize_with(servers, ServerCell::default);
        }
        if blocks.len() < threads {
            blocks.resize_with(threads, BlockScratch::default);
        }

        // Pre-build (or reuse) the Zipf popularity for cache-backed
        // runs: the alias-table build is O(keyspace), so a sweep must
        // not pay it once per server per point.
        let popularity = match &cfg.miss_mode {
            MissMode::FixedRatio => None,
            MissMode::CacheBacked(cc) => {
                let key = (cc.keyspace, cc.skew.to_bits());
                let arc = match zipf {
                    Some((k, arc)) if *k == key => std::sync::Arc::clone(arc),
                    _ => {
                        let arc = std::sync::Arc::new(
                            ZipfPopularity::new(cc.keyspace, cc.skew)
                                .map_err(|e| SimError::InvalidConfig(e.to_string()))?,
                        );
                        *zipf = Some((key, std::sync::Arc::clone(&arc)));
                        arc
                    }
                };
                Some(arc)
            }
        };

        // Cluster-wide consistent hashing: build (or reuse) the routing
        // table and replace the configured load shares with the
        // ring-induced ones — each server receives exactly the
        // popularity mass of the keys it owns, so the unbalanced `{p_j}`
        // *emerges* from the ring instead of being postulated.
        let routed_keyspace = match &cfg.miss_mode {
            MissMode::CacheBacked(cc) => match cc.routing {
                CacheRouting::Independent => None,
                CacheRouting::ConsistentHash { vnodes } => {
                    if !matches!(params.load(), memlat_model::LoadDistribution::Balanced) {
                        return Err(SimError::InvalidConfig(
                            "consistent-hash routing derives the load shares from the ring; \
                             configure LoadDistribution::Balanced"
                                .into(),
                        ));
                    }
                    let key = (
                        cc.keyspace,
                        cc.skew.to_bits(),
                        servers as u64,
                        vnodes as u64,
                    );
                    let pop = popularity
                        .as_ref()
                        .expect("cache-backed mode builds a popularity");
                    let arc = match routed {
                        Some((k, arc)) if *k == key => std::sync::Arc::clone(arc),
                        _ => {
                            let arc = std::sync::Arc::new(
                                RoutedKeyspace::new(pop, servers, vnodes)
                                    .map_err(|e| SimError::InvalidConfig(e.to_string()))?,
                            );
                            *routed = Some((key, std::sync::Arc::clone(&arc)));
                            arc
                        }
                    };
                    shares = arc.shares().to_vec();
                    // The configured peak check used balanced shares;
                    // re-check against the ring's hottest server.
                    let max_share = shares.iter().fold(0.0_f64, |a, &b| a.max(b));
                    let peak = max_share * params.total_key_rate() / params.service_rate();
                    if peak >= 1.0 {
                        return Err(SimError::InvalidConfig(format!(
                            "ring-induced peak server utilization {peak:.3} >= 1: \
                             no stationary regime"
                        )));
                    }
                    Some(arc)
                }
            },
            MissMode::FixedRatio => None,
        };

        // One worker per server; identical code on the sequential and
        // parallel paths, so thread count cannot change the output.
        let block = cfg.effective_block();
        let worker = |j: usize,
                      cell: &mut ServerCell,
                      block_scratch: &mut BlockScratch|
         -> Result<ServerOutcome, SimError> {
            let ServerCell {
                cols,
                flags,
                misses,
            } = cell;
            cols.clear();
            flags.clear();
            misses.clear();
            let p = shares[j];
            if p <= 0.0 {
                return Ok(ServerOutcome {
                    keys: 0,
                    summary: ServerSummary::empty(),
                });
            }
            let lam_j = p * params.total_key_rate();
            let gaps = params
                .arrival()
                .gap_law((1.0 - q) * lam_j)
                .map_err(SimError::Model)?;
            let mut rng = stream_rng(cfg.seed, 1000 + j as u64);
            let faults = cfg.fault_plan.for_server(j);
            // With nothing scheduled and no client timeout, no key can be
            // forced or degraded: the healthy split would receive exactly
            // the pooled stream, so skip the duplicate Welford update per
            // key and copy the accumulator once after the run.
            let plain_run = faults.is_empty() && cfg.client.timeout.is_none();
            let mut sink = WorkerSink {
                j: j as u32,
                idx: 0,
                plain_run,
                keep_pairs,
                hedging,
                misses,
                cols,
                flags,
                latency: StreamingStats::new(),
                sketch: QuantileSketch::new(),
                degraded_latency: StreamingStats::new(),
                healthy_latency: StreamingStats::new(),
            };
            let stats = simulate_server_streaming_with(
                ServerSimParams {
                    interarrival: gaps,
                    concurrency: q,
                    service_rate: params.service_rate(),
                    miss_ratio: params.miss_ratio(),
                    miss_mode: &cfg.miss_mode,
                    popularity: popularity.clone(),
                    routed: routed_keyspace.as_ref().map(|ks| RoutedHandle {
                        keyspace: std::sync::Arc::clone(ks),
                        server: j,
                    }),
                    warmup: cfg.warmup,
                    duration: cfg.duration,
                    faults,
                    client: cfg.client,
                    block,
                },
                &mut rng,
                block_scratch,
                &mut sink,
            )
            .map_err(|e| SimError::InvalidConfig(e.to_string()))?;
            let WorkerSink {
                latency,
                sketch,
                degraded_latency,
                mut healthy_latency,
                misses,
                ..
            } = sink;
            if plain_run {
                healthy_latency = latency;
            }
            // Time-sort this server's miss shard on the worker thread
            // (stable, and already nearly sorted on healthy runs where
            // FCFS departures are monotone). The merge step then only
            // k-way merges M sorted streams instead of re-sorting the
            // whole concatenated stream on the main thread.
            misses.sort_by(|a, b| a.time.total_cmp(&b.time));
            Ok(ServerOutcome {
                keys: stats.counters.jobs,
                summary: ServerSummary {
                    latency,
                    sketch,
                    degraded_latency,
                    healthy_latency,
                    counters: stats.counters,
                    resilience: stats.resilience,
                    // Filled in by the coalescing db stage after merge.
                    coalesce: CoalesceCounters::default(),
                    utilization: stats.utilization,
                    cached_items: stats.cached_items,
                },
            })
        };

        let mut outcomes = dispatch(servers, threads, &worker, cells, blocks)?;

        // Hedged duplicates: a deterministic merge-step pass, in server
        // order, so the thread count still cannot change the output. A
        // key whose primary latency exceeded the hedge delay draws a
        // duplicate attempt from the replica server's *pristine* latency
        // population (sampled before any hedge updates) and keeps
        // `min(primary, delay + replica)`.
        if let Some(h) = cfg.client.hedge {
            let m = servers;
            if m > 1 {
                if pristine.len() < m {
                    pristine.resize_with(m, Vec::new);
                }
                for (j, pop) in pristine.iter_mut().enumerate().take(m) {
                    pop.clear();
                    pop.extend_from_slice(cells[lane_pos(servers, threads, j)].cols.s());
                }
                for (j, out) in outcomes.iter_mut().enumerate() {
                    let replica = &pristine[(j + 1) % m];
                    if replica.is_empty() {
                        continue;
                    }
                    let ServerCell { cols, flags, .. } = &mut cells[lane_pos(servers, threads, j)];
                    let mut rng = stream_rng(cfg.seed, 3_000_000 + j as u64);
                    let mut latency = StreamingStats::new();
                    let mut sketch = QuantileSketch::new();
                    let mut degraded_latency = StreamingStats::new();
                    let mut healthy_latency = StreamingStats::new();
                    for (i, slot) in cols.s_mut().iter_mut().enumerate() {
                        let forced = flags[i] & FLAG_FORCED != 0;
                        let mut s = f64::from(*slot);
                        if !forced && s > h.delay {
                            out.summary.resilience.hedges_sent += 1;
                            let k = (rng.next_u64() % replica.len() as u64) as usize;
                            let (eff, _) = hedge_outcome(s, h.delay, f64::from(replica[k]));
                            // A win must be observable at the f32
                            // precision records are stored at, so the
                            // counter and the records never disagree.
                            let eff32 = eff as f32;
                            if eff32 < *slot {
                                out.summary.resilience.hedges_won += 1;
                                *slot = eff32;
                                s = f64::from(eff32);
                            }
                        }
                        latency.push(s);
                        sketch.push(s);
                        if forced {
                        } else if flags[i] & FLAG_DEGRADED != 0 {
                            degraded_latency.push(s);
                        } else {
                            healthy_latency.push(s);
                        }
                    }
                    // The summaries must describe the effective (post-
                    // hedge) latencies; rebuild them from the records.
                    out.summary.latency = latency;
                    out.summary.sketch = sketch;
                    out.summary.degraded_latency = degraded_latency;
                    out.summary.healthy_latency = healthy_latency;
                }
            }
        }

        // Merge in server order — the only order-sensitive step, and it
        // is fixed regardless of which thread finished first.
        let mut server_records: Vec<KeyColumns> = Vec::new();
        let mut summaries = Vec::with_capacity(outcomes.len());
        let mut utilization = Vec::with_capacity(outcomes.len());
        let mut total_keys = 0u64;
        let mut total_misses = 0u64;
        for (j, out) in outcomes.into_iter().enumerate() {
            let cell = &mut cells[lane_pos(servers, threads, j)];
            total_keys += out.keys;
            // Regular cache misses only: forced misses are accounted
            // separately (they reach the database but are a fault
            // artifact, not a cache property).
            total_misses += out.summary.counters.misses;
            utilization.push(out.summary.utilization);
            summaries.push(out.summary);
            if keep_records {
                // Full retention moves the columns into the output; the
                // scratch keeps only the (empty) replacement buffers.
                server_records.push(std::mem::take(&mut cell.cols));
            }
        }

        // K-way merge of the per-server time-sorted miss shards, keyed
        // `(time, server)`: equal times resolve in server order, and a
        // server's equal-time misses keep their push order (its shard was
        // stable-sorted) — exactly the order the previous global stable
        // sort over the concatenated stream produced, without an
        // O(K log K) single-threaded pass over every miss.
        merge_miss_shards(servers, threads, cells, all_misses);
        let shards = cfg.effective_db_shards();
        let mut db_rng = stream_rng(cfg.seed, 2_000_000);
        let mut db_latency = StreamingStats::new();
        let mut db_sketch = QuantileSketch::new();
        match cfg.miss_relay {
            MissRelay::Independent => run_db_stage_with(
                all_misses,
                shards,
                params.db_service_rate(),
                &mut db_rng,
                |(server, idx), d| {
                    db_latency.push(d);
                    db_sketch.push(d);
                    if keep_records {
                        server_records[server as usize].set_db(idx as usize, d as f32);
                    }
                },
            ),
            MissRelay::Coalesced => run_db_stage_coalesced_with(
                all_misses,
                shards,
                params.db_service_rate(),
                &mut db_rng,
                |(server, idx), d, delayed| {
                    db_latency.push(d);
                    db_sketch.push(d);
                    let c = &mut summaries[server as usize].coalesce;
                    if delayed {
                        c.delayed_hits += 1;
                        c.wait_time += d;
                    } else {
                        c.dispatched += 1;
                    }
                    if keep_records {
                        let cols = &mut server_records[server as usize];
                        cols.set_db(idx as usize, d as f32);
                        if delayed {
                            cols.set_delayed(idx as usize);
                        }
                    }
                },
            ),
        }

        Ok(SimOutput {
            server_records: keep_records.then_some(server_records),
            summaries,
            db_latency,
            db_sketch,
            shares,
            network: params.network_latency(),
            utilization,
            miss_ratio: if total_keys == 0 {
                0.0
            } else {
                total_misses as f64 / total_keys as f64
            },
            total_keys,
        })
    }
}

/// Head of one server's miss shard in the k-way merge, ordered by
/// `(time, server)` — see [`merge_miss_shards`].
struct MergeHead {
    time: f64,
    server: u32,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for MergeHead {}
impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.server.cmp(&other.server))
    }
}

/// Merges the per-server time-sorted miss shards into `all_misses` in
/// `(time, server, push order)` order via a binary heap over the M
/// stream heads: `O(K log M)` with `K` total misses, versus
/// `O(K log K)` for the old concatenate-and-sort.
fn merge_miss_shards(
    servers: usize,
    threads: usize,
    cells: &[ServerCell],
    all_misses: &mut Vec<MissArrival>,
) {
    all_misses.clear();
    let total: usize = (0..servers)
        .map(|j| cells[lane_pos(servers, threads, j)].misses.len())
        .sum();
    all_misses.reserve(total);
    let mut next = vec![0usize; servers];
    let mut heap = std::collections::BinaryHeap::with_capacity(servers);
    for j in 0..servers {
        let shard = &cells[lane_pos(servers, threads, j)].misses;
        if !shard.is_empty() {
            heap.push(std::cmp::Reverse(MergeHead {
                time: shard[0].time,
                server: j as u32,
            }));
        }
    }
    while let Some(std::cmp::Reverse(MergeHead { server, .. })) = heap.pop() {
        let j = server as usize;
        let shard = &cells[lane_pos(servers, threads, j)].misses;
        let pos = next[j];
        all_misses.push(shard[pos]);
        next[j] = pos + 1;
        if pos + 1 < shard.len() {
            heap.push(std::cmp::Reverse(MergeHead {
                time: shard[pos + 1].time,
                server,
            }));
        }
    }
}

/// Number of servers thread `lane` handles: servers `j ≡ lane (mod
/// threads)`.
fn lane_len(servers: usize, threads: usize, lane: usize) -> usize {
    (servers + threads - 1 - lane) / threads
}

/// Position of server `j`'s cell in the lane-major cell layout: lane
/// `j % threads` occupies a contiguous block, inside which `j` sits at
/// slot `j / threads`. Identity when `threads == 1`.
fn lane_pos(servers: usize, threads: usize, j: usize) -> usize {
    let lane = j % threads;
    let offset: usize = (0..lane).map(|l| lane_len(servers, threads, l)).sum();
    offset + j / threads
}

/// Runs `worker(j, cell)` for every server on up to `threads` scoped
/// threads, returning outcomes in server order. Servers are interleaved
/// round-robin across threads so a hot server does not serialize a whole
/// chunk; the lane-major cell layout makes each thread's cells one
/// contiguous `split_at_mut` slice, so dispatch allocates nothing beyond
/// the outcome slots.
fn dispatch<F>(
    servers: usize,
    threads: usize,
    worker: &F,
    cells: &mut [ServerCell],
    blocks: &mut [BlockScratch],
) -> Result<Vec<ServerOutcome>, SimError>
where
    F: Fn(usize, &mut ServerCell, &mut BlockScratch) -> Result<ServerOutcome, SimError> + Sync,
{
    let mut slots: Vec<Option<Result<ServerOutcome, SimError>>> = Vec::new();
    slots.resize_with(servers, || None);
    if threads <= 1 {
        let block = &mut blocks[0];
        for (j, (slot, cell)) in slots.iter_mut().zip(cells.iter_mut()).enumerate() {
            *slot = Some(worker(j, cell, block));
        }
    } else {
        std::thread::scope(|scope| {
            let mut rest_cells = &mut cells[..servers];
            let mut rest_slots = &mut slots[..];
            let mut rest_blocks = &mut blocks[..threads];
            for lane in 0..threads {
                let n = lane_len(servers, threads, lane);
                let (cell_lane, next_cells) = rest_cells.split_at_mut(n);
                let (slot_lane, next_slots) = rest_slots.split_at_mut(n);
                let (block_lane, next_blocks) = rest_blocks.split_at_mut(1);
                rest_cells = next_cells;
                rest_slots = next_slots;
                rest_blocks = next_blocks;
                scope.spawn(move || {
                    let block = &mut block_lane[0];
                    for (i, (slot, cell)) in slot_lane.iter_mut().zip(cell_lane).enumerate() {
                        *slot = Some(worker(lane + i * threads, cell, block));
                    }
                });
            }
        });
    }
    // Un-permute from lane-major back to server order.
    (0..servers)
        .map(|j| {
            slots[lane_pos(servers, threads, j)]
                .take()
                .expect("server worker slot unfilled")
        })
        .collect()
}

impl SimOutput {
    /// Keys recorded across all servers.
    #[must_use]
    pub fn total_keys(&self) -> u64 {
        self.total_keys
    }

    /// Observed per-server utilizations.
    #[must_use]
    pub fn utilization(&self) -> &[f64] {
        &self.utilization
    }

    /// Observed overall miss ratio.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        self.miss_ratio
    }

    /// Total items resident across every server's backing store at the
    /// end of the run (0 under [`MissMode::FixedRatio`]) — the cluster
    /// capacity `x` in the Ji/Quan/Tan miss-ratio asymptotic.
    #[must_use]
    pub fn cached_items(&self) -> u64 {
        self.summaries.iter().map(|s| s.cached_items).sum()
    }

    /// The load shares in force.
    #[must_use]
    pub fn shares(&self) -> &[f64] {
        &self.shares
    }

    /// The constant network latency.
    #[must_use]
    pub fn network_latency(&self) -> f64 {
        self.network
    }

    /// Whether per-key records were retained ([`Retention::Full`]).
    #[must_use]
    pub fn has_records(&self) -> bool {
        self.server_records.is_some()
    }

    /// Per-server `(s, d)` columns.
    ///
    /// # Panics
    ///
    /// Panics under [`Retention::Summary`] — use the streaming accessors
    /// ([`Self::summary`], [`Self::server_latency_quantile`],
    /// [`Self::db_latency_stats`]) instead.
    #[must_use]
    pub fn records(&self, server: usize) -> &KeyColumns {
        &self
            .server_records
            .as_ref()
            .expect("per-key records dropped (Retention::Summary); use the streaming summaries")
            [server]
    }

    /// Per-server streaming summaries (always available).
    #[must_use]
    pub fn summaries(&self) -> &[ServerSummary] {
        &self.summaries
    }

    /// One server's streaming summary.
    #[must_use]
    pub fn summary(&self, server: usize) -> &ServerSummary {
        &self.summaries[server]
    }

    /// Pooled Welford statistics of per-key server latency (all servers,
    /// exact merge in server order).
    #[must_use]
    pub fn pooled_latency_stats(&self) -> StreamingStats {
        let mut pooled = StreamingStats::new();
        for s in &self.summaries {
            pooled.merge(&s.latency);
        }
        pooled
    }

    /// Pooled quantile sketch of per-key server latency (all servers).
    #[must_use]
    pub fn pooled_latency_sketch(&self) -> QuantileSketch {
        let mut pooled = QuantileSketch::new();
        for s in &self.summaries {
            pooled.merge(&s.sketch);
        }
        pooled
    }

    /// Welford statistics of db latency over the missed keys.
    #[must_use]
    pub fn db_latency_stats(&self) -> &StreamingStats {
        &self.db_latency
    }

    /// Quantile sketch of db latency over the missed keys.
    #[must_use]
    pub fn db_latency_sketch(&self) -> &QuantileSketch {
        &self.db_sketch
    }

    /// Pooled ECDF of per-key **server** latency (all servers). Because
    /// server `j` naturally contributes `p_j` of the keys, this pool *is*
    /// the `T_S(1)` mixture of the paper's eq. 11.
    ///
    /// # Panics
    ///
    /// Panics when the run recorded no keys, or under
    /// [`Retention::Summary`] (use [`Self::server_latency_quantile`]).
    #[must_use]
    pub fn server_latency_ecdf(&self) -> Ecdf {
        let records = self
            .server_records
            .as_ref()
            .expect("exact ECDF needs Retention::Full; use server_latency_quantile");
        let mut all: Vec<f64> = Vec::with_capacity(self.total_keys as usize);
        for recs in records {
            all.extend(recs.s().iter().map(|&s| f64::from(s)));
        }
        Ecdf::from_samples(&all)
    }

    /// ECDF of per-key server latency at one server.
    ///
    /// # Panics
    ///
    /// Panics when that server recorded no keys or under
    /// [`Retention::Summary`].
    #[must_use]
    pub fn server_latency_ecdf_of(&self, server: usize) -> Ecdf {
        let s: Vec<f64> = self
            .records(server)
            .s()
            .iter()
            .map(|&s| f64::from(s))
            .collect();
        Ecdf::from_samples(&s)
    }

    /// The `p`-th quantile of pooled per-key server latency: exact (ECDF
    /// order statistic) under [`Retention::Full`], sketch-answered (≤ 1%
    /// relative error, same rank convention) under [`Retention::Summary`].
    ///
    /// # Panics
    ///
    /// Panics when the run recorded no keys or `p ∉ [0, 1]`.
    #[must_use]
    pub fn server_latency_quantile(&self, p: f64) -> f64 {
        if self.server_records.is_some() {
            self.server_latency_ecdf().quantile(p)
        } else {
            self.pooled_latency_sketch().quantile(p)
        }
    }

    /// Measured `E[T_S(N)]`: the `N/(N+1)` quantile of the pooled per-key
    /// server latency (the paper's eq. 12 estimator, §4.5: "the expected
    /// latency for an end-user request statistically equals the N/(N+1)
    /// percentile of the latency for one memcached key").
    #[must_use]
    pub fn expected_server_latency(&self, n: u64) -> f64 {
        let k = memlat_stats::max_order_quantile(n);
        self.server_latency_quantile(k)
    }

    /// Cluster-wide fault and client-resilience counters (the merge of
    /// every server's [`ServerSummary::resilience`]). All zero on a
    /// healthy run.
    #[must_use]
    pub fn resilience(&self) -> ResilienceCounters {
        let mut total = ResilienceCounters::default();
        for s in &self.summaries {
            total.merge(&s.resilience);
        }
        total
    }

    /// Cluster-wide miss-coalescing counters (the merge of every
    /// server's [`ServerSummary::coalesce`]). All zero under
    /// [`MissRelay::Independent`].
    #[must_use]
    pub fn coalesce(&self) -> CoalesceCounters {
        let mut total = CoalesceCounters::default();
        for s in &self.summaries {
            total.merge(&s.coalesce);
        }
        total
    }

    /// Fraction of recorded keys that exhausted every attempt and fell
    /// through to the database (0 on healthy runs).
    #[must_use]
    pub fn forced_miss_ratio(&self) -> f64 {
        if self.total_keys == 0 {
            0.0
        } else {
            self.resilience().forced_misses as f64 / self.total_keys as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlat_model::ModelParams;

    fn quick(seed: u64) -> SimOutput {
        let params = ModelParams::builder().build().unwrap();
        ClusterSim::run(&SimConfig::new(params).duration(0.5).warmup(0.1).seed(seed)).unwrap()
    }

    #[test]
    fn output_shape_is_consistent() {
        let out = quick(1);
        assert_eq!(out.shares().len(), 4);
        assert_eq!(out.utilization().len(), 4);
        assert_eq!(out.summaries().len(), 4);
        let sum: usize = (0..4).map(|j| out.records(j).len()).sum();
        assert_eq!(sum as u64, out.total_keys());
        // Balanced load: every server sees ~1/4 of the keys.
        for j in 0..4 {
            let frac = out.records(j).len() as f64 / out.total_keys() as f64;
            assert!((frac - 0.25).abs() < 0.03, "server {j}: {frac}");
        }
    }

    #[test]
    fn observed_quantities_match_configuration() {
        let out = quick(2);
        assert!(
            (out.miss_ratio() - 0.01).abs() < 0.004,
            "{}",
            out.miss_ratio()
        );
        for &u in out.utilization() {
            assert!((u - 0.78).abs() < 0.06, "{u}");
        }
        assert_eq!(out.network_latency(), 20e-6);
    }

    #[test]
    fn missed_keys_carry_db_latency() {
        let out = quick(3);
        let mut missed = 0;
        let mut hit = 0;
        for j in 0..4 {
            for (_, d) in out.records(j) {
                if d > 0.0 {
                    missed += 1;
                } else {
                    hit += 1;
                }
            }
        }
        assert!(missed > 0, "no misses recorded");
        assert!(hit > missed * 50, "hit/miss ratio implausible");
        // The streaming db summary counts exactly the missed keys.
        assert_eq!(out.db_latency_stats().count(), missed as u64);
        assert_eq!(out.db_latency_sketch().count(), missed as u64);
    }

    #[test]
    fn measured_ts_in_theorem1_band() {
        let out = quick(4);
        let model = memlat_model::ServerLatencyModel::new(&ModelParams::builder().build().unwrap())
            .unwrap();
        let bounds = model.product_form_bounds(150);
        let measured = out.expected_server_latency(150);
        // Generous slack: short run, high quantile.
        assert!(
            measured > bounds.lower * 0.75 && measured < bounds.upper * 1.35,
            "measured={measured} band={bounds:?}"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let a = quick(9);
        let b = quick(9);
        assert_eq!(a.total_keys(), b.total_keys());
        assert_eq!(a.records(0), b.records(0));
        let c = quick(10);
        assert_ne!(a.total_keys(), c.total_keys());
    }

    #[test]
    fn parallel_output_is_bit_identical_to_sequential() {
        let params = ModelParams::builder().build().unwrap();
        let base = SimConfig::new(params)
            .duration(0.5)
            .warmup(0.1)
            .seed(0xbeef);
        let seq = ClusterSim::run(&base.clone().threads(1)).unwrap();
        let par = ClusterSim::run(&base.clone().threads(4)).unwrap();
        // Raw records: every per-key pair identical.
        assert_eq!(seq.total_keys(), par.total_keys());
        for j in 0..seq.shares().len() {
            assert_eq!(seq.records(j), par.records(j), "server {j} records differ");
        }
        // Streaming summaries: bit-identical to full precision.
        assert_eq!(seq.summaries(), par.summaries());
        assert_eq!(seq.db_latency_stats(), par.db_latency_stats());
        assert_eq!(seq.db_latency_sketch(), par.db_latency_sketch());
        assert_eq!(seq.utilization(), par.utilization());
        assert_eq!(seq.miss_ratio(), par.miss_ratio());
        assert_eq!(
            seq.expected_server_latency(150).to_bits(),
            par.expected_server_latency(150).to_bits()
        );
        // And an oversubscribed thread count changes nothing either.
        let over = ClusterSim::run(&base.threads(64)).unwrap();
        assert_eq!(seq.summaries(), over.summaries());
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_buffers() {
        // One scratch across three runs with different seeds and thread
        // counts: every output must match the fresh-buffer run exactly.
        let mut scratch = SimScratch::new();
        for (seed, threads) in [(7u64, 1usize), (8, 3), (7, 1)] {
            let params = ModelParams::builder().build().unwrap();
            let cfg = SimConfig::new(params)
                .duration(0.3)
                .warmup(0.05)
                .seed(seed)
                .threads(threads);
            let reused = ClusterSim::run_with(&cfg, &mut scratch).unwrap();
            let fresh = ClusterSim::run(&cfg).unwrap();
            assert_eq!(reused.total_keys(), fresh.total_keys());
            for j in 0..fresh.shares().len() {
                assert_eq!(reused.records(j), fresh.records(j), "server {j}");
            }
            assert_eq!(reused.summaries(), fresh.summaries());
            assert_eq!(reused.db_latency_stats(), fresh.db_latency_stats());
            assert_eq!(reused.miss_ratio(), fresh.miss_ratio());
        }
    }

    #[test]
    fn summary_retention_matches_full_statistics() {
        let params = ModelParams::builder().build().unwrap();
        let base = SimConfig::new(params).duration(0.5).warmup(0.1).seed(21);
        let full = ClusterSim::run(&base).unwrap();
        let lean = ClusterSim::run(&base.retention(Retention::Summary)).unwrap();
        assert!(full.has_records());
        assert!(!lean.has_records());
        // Same simulation, same summaries.
        assert_eq!(full.summaries(), lean.summaries());
        assert_eq!(full.total_keys(), lean.total_keys());
        assert_eq!(full.miss_ratio(), lean.miss_ratio());
        assert_eq!(full.db_latency_stats(), lean.db_latency_stats());
        // Sketch quantiles agree with the exact ECDF within the bound.
        for p in [0.5, 0.9, 0.99, memlat_stats::max_order_quantile(150)] {
            let exact = full.server_latency_ecdf().quantile(p);
            let approx = lean.server_latency_quantile(p);
            assert!(
                (approx - exact).abs() <= 0.011 * exact,
                "p={p}: approx={approx} exact={exact}"
            );
        }
        // Pooled Welford mean is exact (f32 record rounding aside).
        let pooled = lean.pooled_latency_stats();
        assert_eq!(pooled.count(), lean.total_keys());
        let exact_mean = full.server_latency_ecdf().mean();
        assert!((pooled.mean() / exact_mean - 1.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "Retention::Summary")]
    fn summary_retention_records_panics() {
        let params = ModelParams::builder().build().unwrap();
        let out = ClusterSim::run(
            &SimConfig::new(params)
                .duration(0.3)
                .seed(5)
                .retention(Retention::Summary),
        )
        .unwrap();
        let _ = out.records(0);
    }

    #[test]
    fn healthy_run_reports_no_resilience_activity() {
        let out = quick(6);
        assert!(!out.resilience().any());
        assert_eq!(out.forced_miss_ratio(), 0.0);
        for s in out.summaries() {
            assert_eq!(s.degraded_latency.count(), 0);
            assert_eq!(s.healthy_latency.count(), s.latency.count());
        }
    }

    #[test]
    fn crashes_and_retries_surface_in_output() {
        use crate::fault::{ClientPolicy, FaultPlan, RetryPolicy};
        let params = ModelParams::builder().build().unwrap();
        let cfg = SimConfig::new(params)
            .duration(0.4)
            .warmup(0.1)
            .seed(31)
            .fault_plan(
                FaultPlan::none()
                    .crash(1, 0.2, 0.3)
                    .slowdown(2, 0.2, 0.4, 3.0),
            )
            .client(
                ClientPolicy::none()
                    .timeout(5e-3)
                    .retry(RetryPolicy::default()),
            );
        let out = ClusterSim::run(&cfg).unwrap();
        let total = out.resilience();
        assert!(total.refused > 0, "crash produced no refusals");
        assert!(total.retries > 0, "no retries were issued");
        assert!((total.downtime - 0.1).abs() < 1e-12);
        assert!((total.degraded_time - 0.2).abs() < 1e-12);
        // Only the crashed server refused; only the slowed one split.
        assert_eq!(out.summary(0).resilience.refused, 0);
        assert!(out.summary(1).resilience.refused > 0);
        assert!(out.summary(2).degraded_latency.count() > 0);
        assert_eq!(out.summary(0).degraded_latency.count(), 0);
        // Forced misses carry a db latency like regular misses, so the
        // db stage saw misses + forced keys.
        assert_eq!(
            out.db_latency_stats().count(),
            out.summaries()
                .iter()
                .map(|s| s.counters.misses)
                .sum::<u64>()
                + total.forced_misses
        );
        assert_eq!(
            out.forced_miss_ratio(),
            total.forced_misses as f64 / out.total_keys() as f64
        );
    }

    #[test]
    fn hedging_reduces_tail_against_a_slow_server() {
        use crate::fault::{ClientPolicy, FaultPlan};
        let params = ModelParams::builder().build().unwrap();
        let base = SimConfig::new(params)
            .duration(0.4)
            .warmup(0.1)
            .seed(32)
            .fault_plan(FaultPlan::none().slowdown(0, 0.1, 0.5, 5.0));
        let plain = ClusterSim::run(&base).unwrap();
        let delay = plain.server_latency_quantile(0.95);
        let hedged = ClusterSim::run(&base.client(ClientPolicy::none().hedge(delay))).unwrap();
        let total = hedged.resilience();
        assert!(total.hedges_sent > 0);
        assert!(total.hedges_won > 0);
        assert!(total.hedges_won <= total.hedges_sent);
        // Hedging is a pathwise min against the replica draw: the p99
        // can only improve, and against one slow server it must.
        let p99_plain = plain.server_latency_quantile(0.99);
        let p99_hedged = hedged.server_latency_quantile(0.99);
        assert!(
            p99_hedged < p99_plain,
            "hedged p99 {p99_hedged} !< plain {p99_plain}"
        );
    }

    #[test]
    fn hedging_under_summary_retention_matches_full() {
        // Hedging needs the per-key columns internally even when the
        // caller asked for Summary retention; the summaries must come
        // out identical either way, with no records in the output.
        use crate::fault::{ClientPolicy, FaultPlan};
        let params = ModelParams::builder().build().unwrap();
        let base = SimConfig::new(params)
            .duration(0.3)
            .warmup(0.05)
            .seed(33)
            .fault_plan(FaultPlan::none().slowdown(0, 0.1, 0.25, 4.0))
            .client(ClientPolicy::none().hedge(1e-3));
        let full = ClusterSim::run(&base).unwrap();
        let lean = ClusterSim::run(&base.retention(Retention::Summary)).unwrap();
        assert!(!lean.has_records());
        assert_eq!(full.summaries(), lean.summaries());
        assert_eq!(full.resilience(), lean.resilience());
        assert!(lean.resilience().hedges_sent > 0);
    }

    #[test]
    fn zero_share_server_records_nothing() {
        let params = ModelParams::builder()
            .load(memlat_model::LoadDistribution::Custom(vec![
                0.5, 0.5, 0.0, 0.0,
            ]))
            .total_key_rate(100_000.0)
            .build()
            .unwrap();
        let out = ClusterSim::run(&SimConfig::new(params).duration(0.3).seed(5)).unwrap();
        assert!(out.records(2).is_empty());
        assert!(out.records(3).is_empty());
        assert!(!out.records(0).is_empty());
        assert!(out.summary(2).latency.count() == 0);
        assert_eq!(out.summary(2).counters, ServerCounters::default());
    }

    #[test]
    fn lane_layout_covers_every_server_once() {
        for servers in [1usize, 2, 3, 4, 7, 16] {
            for threads in 1..=servers {
                let total: usize = (0..threads).map(|l| lane_len(servers, threads, l)).sum();
                assert_eq!(total, servers, "{servers} servers / {threads} threads");
                let mut seen = vec![false; servers];
                for j in 0..servers {
                    let pos = lane_pos(servers, threads, j);
                    assert!(!seen[pos], "position {pos} assigned twice");
                    seen[pos] = true;
                }
                assert!(seen.iter().all(|&b| b));
            }
        }
    }
}
