//! The cluster simulation: M servers → sharded database.

use memlat_des::rng::stream_rng;
use memlat_stats::Ecdf;

use crate::{
    config::SimConfig,
    database::{run_db_stage, MissArrival},
    server::{simulate_server, ServerSimParams},
    SimError,
};

/// The orchestrator: runs every memcached server, merges the cache-miss
/// streams into the sharded database, and produces a [`SimOutput`].
#[derive(Debug)]
pub struct ClusterSim;

/// Per-key outcome kept for analysis: `(server latency, db latency)` —
/// `db == 0` for hits. Stored as `f32` to halve memory at the volumes the
/// sweeps produce.
type KeyPair = (f32, f32);

/// Everything a simulation run produces.
#[derive(Debug)]
pub struct SimOutput {
    /// Per-server `(s, d)` pairs in arrival order.
    server_records: Vec<Vec<KeyPair>>,
    /// Load shares used (for request assembly).
    shares: Vec<f64>,
    /// Constant network latency.
    network: f64,
    /// Observed per-server utilization.
    utilization: Vec<f64>,
    /// Observed overall miss ratio.
    miss_ratio: f64,
    /// Keys recorded.
    total_keys: u64,
}

impl ClusterSim {
    /// Runs the full simulation.
    ///
    /// # Errors
    ///
    /// Propagates configuration and model errors.
    pub fn run(cfg: &SimConfig) -> Result<SimOutput, SimError> {
        cfg.validate()?;
        let params = &cfg.params;
        // The DES would happily simulate an overloaded server, but every
        // stationary estimator downstream would silently depend on the
        // horizon; refuse, like the analytical model does.
        let peak = params.peak_utilization()?;
        if peak >= 1.0 {
            return Err(SimError::InvalidConfig(format!(
                "peak server utilization {peak:.3} >= 1: no stationary regime"
            )));
        }
        let shares = params.load().shares(params.servers())?;
        let q = params.concurrency();

        let mut server_records: Vec<Vec<KeyPair>> = Vec::with_capacity(shares.len());
        let mut utilization = Vec::with_capacity(shares.len());
        let mut misses: Vec<MissArrival> = Vec::new();
        let mut total_keys = 0u64;
        let mut total_misses = 0u64;

        for (j, &p) in shares.iter().enumerate() {
            if p <= 0.0 {
                server_records.push(Vec::new());
                utilization.push(0.0);
                continue;
            }
            let lam_j = p * params.total_key_rate();
            let gaps = params.arrival().interarrival((1.0 - q) * lam_j)?;
            let mut rng = stream_rng(cfg.seed, 1000 + j as u64);
            let run = simulate_server(
                ServerSimParams {
                    interarrival: gaps,
                    concurrency: q,
                    service_rate: params.service_rate(),
                    miss_ratio: params.miss_ratio(),
                    miss_mode: &cfg.miss_mode,
                    warmup: cfg.warmup,
                    duration: cfg.duration,
                },
                &mut rng,
            )
            .map_err(|e| SimError::InvalidConfig(e.to_string()))?;

            let mut pairs: Vec<KeyPair> = Vec::with_capacity(run.records.len());
            for (i, r) in run.records.iter().enumerate() {
                if r.missed {
                    misses.push(MissArrival {
                        time: r.completion,
                        origin: (j as u32, i as u32),
                    });
                    total_misses += 1;
                }
                pairs.push((r.server_latency as f32, 0.0));
            }
            total_keys += run.records.len() as u64;
            server_records.push(pairs);
            utilization.push(run.utilization);
        }

        // Merge miss streams in time order and run the database stage.
        misses.sort_by(|a, b| a.time.total_cmp(&b.time));
        let shards = cfg.effective_db_shards();
        let mut db_rng = stream_rng(cfg.seed, 2_000_000);
        for ((server, idx), d) in
            run_db_stage(&misses, shards, params.db_service_rate(), &mut db_rng)
        {
            server_records[server as usize][idx as usize].1 = d as f32;
        }

        Ok(SimOutput {
            server_records,
            shares,
            network: params.network_latency(),
            utilization,
            miss_ratio: if total_keys == 0 {
                0.0
            } else {
                total_misses as f64 / total_keys as f64
            },
            total_keys,
        })
    }
}

impl SimOutput {
    /// Keys recorded across all servers.
    #[must_use]
    pub fn total_keys(&self) -> u64 {
        self.total_keys
    }

    /// Observed per-server utilizations.
    #[must_use]
    pub fn utilization(&self) -> &[f64] {
        &self.utilization
    }

    /// Observed overall miss ratio.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        self.miss_ratio
    }

    /// The load shares in force.
    #[must_use]
    pub fn shares(&self) -> &[f64] {
        &self.shares
    }

    /// The constant network latency.
    #[must_use]
    pub fn network_latency(&self) -> f64 {
        self.network
    }

    /// Per-server `(s, d)` records.
    #[must_use]
    pub fn records(&self, server: usize) -> &[(f32, f32)] {
        &self.server_records[server]
    }

    /// Pooled ECDF of per-key **server** latency (all servers). Because
    /// server `j` naturally contributes `p_j` of the keys, this pool *is*
    /// the `T_S(1)` mixture of the paper's eq. 11.
    ///
    /// # Panics
    ///
    /// Panics when the run recorded no keys.
    #[must_use]
    pub fn server_latency_ecdf(&self) -> Ecdf {
        let mut all: Vec<f64> = Vec::with_capacity(self.total_keys as usize);
        for recs in &self.server_records {
            all.extend(recs.iter().map(|&(s, _)| f64::from(s)));
        }
        Ecdf::from_samples(&all)
    }

    /// ECDF of per-key server latency at one server.
    ///
    /// # Panics
    ///
    /// Panics when that server recorded no keys.
    #[must_use]
    pub fn server_latency_ecdf_of(&self, server: usize) -> Ecdf {
        let s: Vec<f64> =
            self.server_records[server].iter().map(|&(s, _)| f64::from(s)).collect();
        Ecdf::from_samples(&s)
    }

    /// Measured `E[T_S(N)]`: the `N/(N+1)` quantile of the pooled per-key
    /// server latency (the paper's eq. 12 estimator, §4.5: "the expected
    /// latency for an end-user request statistically equals the N/(N+1)
    /// percentile of the latency for one memcached key").
    #[must_use]
    pub fn expected_server_latency(&self, n: u64) -> f64 {
        let k = memlat_stats::max_order_quantile(n);
        self.server_latency_ecdf().quantile(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlat_model::ModelParams;

    fn quick(seed: u64) -> SimOutput {
        let params = ModelParams::builder().build().unwrap();
        ClusterSim::run(&SimConfig::new(params).duration(0.5).warmup(0.1).seed(seed)).unwrap()
    }

    #[test]
    fn output_shape_is_consistent() {
        let out = quick(1);
        assert_eq!(out.shares().len(), 4);
        assert_eq!(out.utilization().len(), 4);
        let sum: usize = (0..4).map(|j| out.records(j).len()).sum();
        assert_eq!(sum as u64, out.total_keys());
        // Balanced load: every server sees ~1/4 of the keys.
        for j in 0..4 {
            let frac = out.records(j).len() as f64 / out.total_keys() as f64;
            assert!((frac - 0.25).abs() < 0.03, "server {j}: {frac}");
        }
    }

    #[test]
    fn observed_quantities_match_configuration() {
        let out = quick(2);
        assert!((out.miss_ratio() - 0.01).abs() < 0.004, "{}", out.miss_ratio());
        for &u in out.utilization() {
            assert!((u - 0.78).abs() < 0.06, "{u}");
        }
        assert_eq!(out.network_latency(), 20e-6);
    }

    #[test]
    fn missed_keys_carry_db_latency() {
        let out = quick(3);
        let mut missed = 0;
        let mut hit = 0;
        for j in 0..4 {
            for &(_, d) in out.records(j) {
                if d > 0.0 {
                    missed += 1;
                } else {
                    hit += 1;
                }
            }
        }
        assert!(missed > 0, "no misses recorded");
        assert!(hit > missed * 50, "hit/miss ratio implausible");
    }

    #[test]
    fn measured_ts_in_theorem1_band() {
        let out = quick(4);
        let model =
            memlat_model::ServerLatencyModel::new(&ModelParams::builder().build().unwrap())
                .unwrap();
        let bounds = model.product_form_bounds(150);
        let measured = out.expected_server_latency(150);
        // Generous slack: short run, high quantile.
        assert!(
            measured > bounds.lower * 0.75 && measured < bounds.upper * 1.35,
            "measured={measured} band={bounds:?}"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let a = quick(9);
        let b = quick(9);
        assert_eq!(a.total_keys(), b.total_keys());
        assert_eq!(a.records(0), b.records(0));
        let c = quick(10);
        assert_ne!(a.total_keys(), c.total_keys());
    }

    #[test]
    fn zero_share_server_records_nothing() {
        let params = ModelParams::builder()
            .load(memlat_model::LoadDistribution::Custom(vec![0.5, 0.5, 0.0, 0.0]))
            .total_key_rate(100_000.0)
            .build()
            .unwrap();
        let out = ClusterSim::run(&SimConfig::new(params).duration(0.3).seed(5)).unwrap();
        assert!(out.records(2).is_empty());
        assert!(out.records(3).is_empty());
        assert!(!out.records(0).is_empty());
    }
}
