//! Discrete-event simulator of a full memcached deployment — the
//! reproduction's stand-in for the paper's physical testbed.
//!
//! The simulated system realizes exactly the generative process the
//! paper's model assumes (and, in [`e2e`] mode, relaxes one of its
//! assumptions):
//!
//! * per-server **batch key arrivals** with a configurable gap law
//!   (Generalized Pareto for the Facebook workload) and geometric batch
//!   sizes (`q`),
//! * **exponential per-key service** at rate `μ_S`, FCFS,
//! * a **cache-miss stage**: each key misses with fixed probability `r`
//!   — or, in the cache-backed extension, by actually consulting a
//!   slab/LRU [`memlat_cache::Store`] fed with Zipf-popular keys — and is
//!   relayed to a sharded `M/M/1` database,
//! * constant **network latency**, and
//! * **request assembly**: an end-user request's `N` keys split
//!   multinomially over servers per the load shares `{p_j}`, and the
//!   request completes at the maximum key latency (the fork-join join).
//!
//! | module | role |
//! |---|---|
//! | [`config`] | [`SimConfig`]: model parameters + simulation controls |
//! | [`fault`] | [`FaultPlan`] crash/slowdown schedules + [`ClientPolicy`] timeout/retry/hedging |
//! | [`miss`] | per-server miss state: fixed-ratio coin flip, or an LRU-backed store (independent or consistent-hash routed) |
//! | [`server`] | one memcached server: batches → FCFS exp(μ_S) → miss decision |
//! | [`database`] | sharded M/M/1 database stage (independent or per-key coalescing relay) + a fast db-only experiment path |
//! | [`sim`] | [`ClusterSim`]: orchestrates servers → database, produces [`SimOutput`] |
//! | [`columns`] | [`KeyColumns`]: column-major per-key `(s, d)` storage |
//! | [`assembly`] | synthetic request assembly and latency breakdowns |
//! | [`e2e`] | end-to-end mode: explicit request fan-out (tests the independence assumption) |
//! | [`runner`] | parallel replications with confidence intervals |
//!
//! # Examples
//!
//! ```
//! use memlat_cluster::{ClusterSim, SimConfig};
//! use memlat_model::ModelParams;
//!
//! # fn main() -> Result<(), memlat_cluster::SimError> {
//! let params = ModelParams::builder().build()?;
//! let cfg = SimConfig::new(params).duration(0.3).seed(7);
//! let out = ClusterSim::run(&cfg)?;
//! assert!(out.total_keys() > 10_000);
//! // Measured E[T_S(N)] lands in the model's Theorem-1 band (± noise).
//! let measured = out.expected_server_latency(150);
//! assert!(measured > 100e-6 && measured < 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod assembly;
pub mod columns;
pub mod config;
pub mod database;
pub mod e2e;
pub mod fault;
pub mod miss;
pub mod runner;
pub mod server;
pub mod sim;

pub use assembly::{RequestSample, RequestStats};
pub use columns::KeyColumns;
pub use config::{CacheBackedConfig, CacheRouting, MissMode, MissRelay, Retention, SimConfig};
pub use e2e::{E2eConfig, E2eOutput};
pub use fault::{ClientPolicy, FaultEvent, FaultKind, FaultPlan, HedgePolicy, RetryPolicy};
pub use miss::{build_miss_state, FixedRatioMiss, LruBackedMiss, MissState, RoutedHandle};
pub use runner::{run_replications, ReplicatedStats};
pub use sim::{ClusterSim, ServerSummary, SimOutput, SimScratch};

/// Error type of the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Invalid simulation configuration.
    InvalidConfig(String),
    /// The model parameters were rejected (validation or instability).
    Model(memlat_model::ModelError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(what) => write!(f, "invalid simulation config: {what}"),
            SimError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Model(e) => Some(e),
            SimError::InvalidConfig(_) => None,
        }
    }
}

impl From<memlat_model::ModelError> for SimError {
    fn from(e: memlat_model::ModelError) -> Self {
        SimError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SimError::InvalidConfig("zero duration".into());
        assert!(e.to_string().contains("zero duration"));
        let m: SimError = memlat_model::ModelError::InvalidParam("x".into()).into();
        assert!(m.to_string().contains("model error"));
    }
}
