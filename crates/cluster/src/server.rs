//! One simulated memcached server.

use memlat_cache::{Store, StoreConfig};
use memlat_des::fcfs::FcfsStation;
use memlat_des::metrics::ServerCounters;
use memlat_dist::{Continuous, GeneralizedPareto, ParamError};
use memlat_workload::{arrival::BatchArrivals, ZipfPopularity};
use rand::Rng;
use rand::RngCore;

use crate::config::MissMode;

/// One key's outcome at a memcached server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyRecord {
    /// Arrival time of the key's batch.
    pub arrival: f64,
    /// Time service finished for this key.
    pub completion: f64,
    /// Processing latency at the server (`s_i` in the paper).
    pub server_latency: f64,
    /// Whether the key missed the cache.
    pub missed: bool,
}

/// Output of simulating one server for the run's duration.
#[derive(Debug)]
pub struct ServerRun {
    /// Per-key records in arrival order (post-warm-up only).
    pub records: Vec<KeyRecord>,
    /// Observed utilization (busy time ÷ horizon, including warm-up).
    pub utilization: f64,
    /// Observed miss ratio over the recorded keys.
    pub miss_ratio: f64,
    /// Observed key arrival rate (recorded keys ÷ measured duration).
    pub key_rate: f64,
    /// Activity counters: busy time and queue high-water mark over the
    /// full horizon (warm-up included), jobs/misses over the measured
    /// window.
    pub counters: ServerCounters,
}

/// The miss decider a server uses.
enum MissDecider {
    Fixed(f64),
    Cached {
        // Boxed: the slab store dwarfs the Fixed variant.
        store: Box<Store>,
        popularity: ZipfPopularity,
        value_sizes: GeneralizedPareto,
    },
}

impl MissDecider {
    fn new(mode: &MissMode, miss_ratio: f64) -> Result<Self, ParamError> {
        match mode {
            MissMode::FixedRatio => Ok(MissDecider::Fixed(miss_ratio)),
            MissMode::CacheBacked(cfg) => Ok(MissDecider::Cached {
                store: Box::new(
                    Store::new(StoreConfig::with_memory(cfg.memory_bytes))
                        .map_err(|e| ParamError::new(e.to_string()))?,
                ),
                popularity: ZipfPopularity::new(cfg.keyspace, cfg.skew)?,
                value_sizes: GeneralizedPareto::with_mean(0.35, cfg.mean_value_bytes)?,
            }),
        }
    }

    /// Whether the next key misses, at simulated time `now`.
    fn misses(&mut self, now: f64, rng: &mut dyn RngCore) -> bool {
        match self {
            MissDecider::Fixed(r) => {
                if *r <= 0.0 {
                    false
                } else {
                    memlat_dist::open_unit(rng) < *r
                }
            }
            MissDecider::Cached {
                store,
                popularity,
                value_sizes,
            } => {
                let key = popularity.sample_key(rng);
                if store.get(key, now).is_hit() {
                    false
                } else {
                    // Demand fill: the value fetched from the database is
                    // cached (items larger than the biggest chunk are
                    // simply not cached, like memcached).
                    let size = value_sizes.sample(rng).max(1.0) as usize;
                    let _ = store.set(key, size, None, now);
                    true
                }
            }
        }
    }

    fn observed_miss_ratio(&self) -> Option<f64> {
        match self {
            MissDecider::Fixed(_) => None,
            MissDecider::Cached { store, .. } => Some(store.stats().miss_ratio()),
        }
    }
}

/// Parameters for one server's run.
pub struct ServerSimParams<'a> {
    /// Inter-batch gap law.
    pub interarrival: Box<dyn Continuous>,
    /// Concurrency probability `q`.
    pub concurrency: f64,
    /// Per-key service rate `μ_S`.
    pub service_rate: f64,
    /// Model miss ratio `r` (used by [`MissMode::FixedRatio`]).
    pub miss_ratio: f64,
    /// Miss decision mode.
    pub miss_mode: &'a MissMode,
    /// Warm-up seconds (records discarded).
    pub warmup: f64,
    /// Measured seconds after warm-up.
    pub duration: f64,
}

/// Simulates one memcached server: batch arrivals → FCFS exp(μ_S)
/// service → miss decision per key.
///
/// # Errors
///
/// Returns [`ParamError`] when the miss mode's parameters are invalid.
pub fn simulate_server(
    p: ServerSimParams<'_>,
    rng: &mut dyn RngCore,
) -> Result<ServerRun, ParamError> {
    let mut arrivals = BatchArrivals::new(p.interarrival, p.concurrency)?;
    let mut decider = MissDecider::new(p.miss_mode, p.miss_ratio)?;
    let mut station = FcfsStation::new();
    let horizon = p.warmup + p.duration;
    let mut records = Vec::new();
    let mut misses = 0u64;

    loop {
        let (t, batch) = arrivals.next_batch(rng);
        if t >= horizon {
            break;
        }
        for _ in 0..batch {
            let svc = -memlat_dist::open_unit(rng).ln() / p.service_rate;
            let done = station.submit(t, svc);
            if t >= p.warmup {
                let missed = decider.misses(done.departure, rng);
                if missed {
                    misses += 1;
                }
                records.push(KeyRecord {
                    arrival: t,
                    completion: done.departure,
                    server_latency: done.sojourn(),
                    missed,
                });
            } else if matches!(p.miss_mode, MissMode::CacheBacked(_)) {
                // Let the cache warm during warm-up without recording.
                let _ = decider.misses(done.departure, rng);
            }
        }
    }

    let recorded = records.len() as f64;
    let miss_ratio = decider.observed_miss_ratio().unwrap_or(if recorded > 0.0 {
        misses as f64 / recorded
    } else {
        0.0
    });
    // Tiny bias: utilization uses the full horizon (warm-up included).
    let utilization = station.utilization(horizon).min(1.0);
    let counters = ServerCounters {
        busy_time: station.busy_time(),
        queue_max: station.queue_max(),
        jobs: records.len() as u64,
        misses,
    };
    Ok(ServerRun {
        records,
        utilization,
        miss_ratio,
        key_rate: recorded / p.duration,
        counters,
    })
}

/// Convenience: draw an exponential service sample (used by the database
/// stage as well).
pub fn exp_sample(rate: f64, rng: &mut impl Rng) -> f64 {
    -memlat_dist::open_unit(rng).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlat_dist::GeneralizedPareto;
    use memlat_workload::facebook;
    use rand::SeedableRng;

    fn facebook_run(duration: f64, seed: u64) -> ServerRun {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        simulate_server(
            ServerSimParams {
                interarrival: Box::new(facebook::interarrival().unwrap()),
                concurrency: facebook::CONCURRENCY_Q,
                service_rate: facebook::SERVICE_RATE,
                miss_ratio: facebook::MISS_RATIO,
                miss_mode: &MissMode::FixedRatio,
                warmup: 0.2,
                duration,
            },
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn rates_and_utilization_match_configuration() {
        let run = facebook_run(2.0, 1);
        assert!(
            (run.key_rate / facebook::KEY_RATE - 1.0).abs() < 0.05,
            "{}",
            run.key_rate
        );
        assert!((run.utilization - 0.78).abs() < 0.05, "{}", run.utilization);
        assert!((run.miss_ratio - 0.01).abs() < 0.005, "{}", run.miss_ratio);
        // Counters agree with the record-level view.
        assert_eq!(run.counters.jobs, run.records.len() as u64);
        assert_eq!(
            run.counters.misses,
            run.records.iter().filter(|r| r.missed).count() as u64
        );
        assert!(run.counters.queue_max >= 1);
        assert!(run.counters.busy_time > 0.0);
    }

    #[test]
    fn latency_quantiles_inside_eq9_band() {
        // The per-key latency quantiles must fall between the model's
        // T_Q and T_C bounds (paper eq. 9 / Fig. 4).
        let run = facebook_run(4.0, 2);
        let gaps = GeneralizedPareto::facebook(0.15, 56_250.0).unwrap();
        let queue = memlat_queue::GixM1::new(&gaps, 0.1, 80_000.0).unwrap();
        let mut lats: Vec<f64> = run.records.iter().map(|r| r.server_latency).collect();
        lats.sort_by(f64::total_cmp);
        let ecdf = memlat_stats::Ecdf::from_sorted(lats);
        for k in [0.3, 0.6, 0.9] {
            let (lo, hi) = queue.key_latency_quantile_bounds(k);
            let measured = ecdf.quantile(k);
            // 12% slack for finite-run noise.
            assert!(
                measured > lo * 0.88 && measured < hi * 1.12,
                "k={k}: measured={measured} band=({lo}, {hi})"
            );
        }
    }

    #[test]
    fn records_are_causally_consistent() {
        let run = facebook_run(0.5, 3);
        for r in &run.records {
            assert!(r.completion >= r.arrival);
            assert!((r.server_latency - (r.completion - r.arrival)).abs() < 1e-12);
        }
        // Completions at one FCFS server are non-decreasing.
        assert!(run
            .records
            .windows(2)
            .all(|w| w[1].completion >= w[0].completion));
    }

    #[test]
    fn zero_miss_ratio_yields_no_misses() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let run = simulate_server(
            ServerSimParams {
                interarrival: Box::new(facebook::interarrival().unwrap()),
                concurrency: 0.1,
                service_rate: facebook::SERVICE_RATE,
                miss_ratio: 0.0,
                miss_mode: &MissMode::FixedRatio,
                warmup: 0.0,
                duration: 0.3,
            },
            &mut rng,
        )
        .unwrap();
        assert!(run.records.iter().all(|r| !r.missed));
        assert_eq!(run.miss_ratio, 0.0);
    }

    #[test]
    fn cache_backed_mode_produces_emergent_misses() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mode = MissMode::CacheBacked(crate::config::CacheBackedConfig {
            memory_bytes: 8 << 20,
            keyspace: 200_000,
            skew: 1.01,
            mean_value_bytes: 300.0,
        });
        let run = simulate_server(
            ServerSimParams {
                interarrival: Box::new(facebook::interarrival().unwrap()),
                concurrency: 0.1,
                service_rate: facebook::SERVICE_RATE,
                miss_ratio: 0.0, // ignored in cache-backed mode
                miss_mode: &mode,
                warmup: 0.5,
                duration: 0.5,
            },
            &mut rng,
        )
        .unwrap();
        // Some misses, but far fewer than hits: a working cache.
        assert!(
            run.miss_ratio > 0.0 && run.miss_ratio < 0.5,
            "{}",
            run.miss_ratio
        );
        assert!(run.records.iter().any(|r| r.missed));
        assert!(run.records.iter().any(|r| !r.missed));
    }
}
