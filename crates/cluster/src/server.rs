//! One simulated memcached server.
//!
//! The per-key hot path is fully streaming: batches are drawn lazily
//! from the seed-derived RNG stream (no ahead-of-time trace
//! materialization), each resolved key is handed to a caller-supplied
//! sink ([`simulate_server_streaming`]), and the whole pipeline — gap
//! law, batch size, service draw, miss decision — is monomorphized over
//! the RNG type so nothing in the loop goes through a vtable.
//!
//! On eligible runs (no faults, no client timeout, fixed-ratio misses)
//! the loop is additionally **block-batched**: keys are staged in
//! structure-of-arrays lanes ([`BlockScratch`]) of [`ServerSimParams::
//! block`] keys, raw uniforms are banked per key, the uniform→law
//! transforms and the FCFS Lindley recursion run as tight slice scans,
//! and whole blocks reach the sink via [`RecordSink::record_block`].
//! Arrival generation itself is block-shaped too: for single-draw gap
//! laws the speculative pipeline
//! ([`BatchArrivals::fill_block_speculative`]) banks raw gap bits,
//! transforms them through the SIMD kernels, prefix-sums the times off a
//! carried clock, and patches the horizon boundary by deterministic
//! over-generate-and-trim — so the serial `t += gap` recurrence no
//! longer gates throughput. Blocks consume the RNG stream in exactly the
//! scalar order, so block size can never change the output — only the
//! wall clock.

use memlat_des::fcfs::FcfsStation;
use memlat_des::metrics::{ResilienceCounters, ServerCounters};
use memlat_dist::{GapLaw, ParamError};
use memlat_workload::retry::exponential_backoff;
use memlat_workload::{
    arrival::{ArrivalScratch, BatchArrivals},
    RetryQueue, ZipfPopularity,
};
use rand::Rng;
use rand::RngCore;

use crate::config::MissMode;
use crate::database::NO_KEY;
use crate::fault::{ClientPolicy, ServerFaults};
use crate::miss::{build_miss_state, MissState, RoutedHandle};

/// One key's outcome at a memcached server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyRecord {
    /// Arrival time of the key's first attempt.
    pub arrival: f64,
    /// Time the key resolved: service finished for a served key, the
    /// final failure was detected for a forced miss.
    pub completion: f64,
    /// Processing latency at the server (`s_i` in the paper): resolution
    /// time minus first arrival, so retries and backoff delays count.
    pub server_latency: f64,
    /// Whether the key missed the cache.
    pub missed: bool,
    /// The key identity sampled by a cache-backed miss decision, or
    /// [`NO_KEY`] when none exists (fixed-ratio coin flips, forced
    /// misses). Feeds the coalescing miss relay.
    pub key: u64,
    /// Whether the key exhausted every attempt (timeouts/refusals) and
    /// fell through to the database — a forced miss. Zero on healthy runs.
    pub forced: bool,
    /// Attempts issued for this key (1 on healthy runs).
    pub attempts: u32,
    /// Whether the served attempt arrived inside a slowdown window.
    pub degraded: bool,
}

/// Output of simulating one server for the run's duration.
#[derive(Debug)]
pub struct ServerRun {
    /// Per-key records in resolution-processing order (post-warm-up
    /// only; identical to arrival order on healthy runs).
    pub records: Vec<KeyRecord>,
    /// Observed utilization (busy time ÷ horizon, including warm-up).
    pub utilization: f64,
    /// Observed miss ratio over the recorded keys.
    pub miss_ratio: f64,
    /// Observed key arrival rate (recorded keys ÷ measured duration).
    pub key_rate: f64,
    /// Activity counters: busy time and queue high-water mark over the
    /// full horizon (warm-up included), jobs/misses over the measured
    /// window.
    pub counters: ServerCounters,
    /// Fault and client-resilience counters (all zero on healthy runs).
    pub resilience: ResilienceCounters,
    /// Items resident in the backing store at the end of the run (0
    /// under [`MissMode::FixedRatio`]).
    pub cached_items: u64,
}

/// The streaming aggregates of one server's run — everything
/// [`ServerRun`] carries except the record buffer itself.
#[derive(Debug, Clone, Copy)]
pub struct ServerRunStats {
    /// Observed utilization (busy time ÷ horizon, including warm-up).
    pub utilization: f64,
    /// Observed miss ratio over the recorded keys.
    pub miss_ratio: f64,
    /// Observed key arrival rate (recorded keys ÷ measured duration).
    pub key_rate: f64,
    /// Activity counters (see [`ServerRun::counters`]).
    pub counters: ServerCounters,
    /// Fault and client-resilience counters (all zero on healthy runs).
    pub resilience: ResilienceCounters,
    /// Items resident in the backing store at the end of the run (0
    /// under [`MissMode::FixedRatio`]).
    pub cached_items: u64,
}

/// Parameters for one server's run.
pub struct ServerSimParams<'a> {
    /// Inter-batch gap law (one of the closed preset shapes, so the
    /// per-batch draw is a static match — see [`GapLaw`]).
    pub interarrival: GapLaw,
    /// Concurrency probability `q`.
    pub concurrency: f64,
    /// Per-key service rate `μ_S`.
    pub service_rate: f64,
    /// Model miss ratio `r` (used by [`MissMode::FixedRatio`]).
    pub miss_ratio: f64,
    /// Miss decision mode.
    pub miss_mode: &'a MissMode,
    /// Pre-built Zipf popularity for [`MissMode::CacheBacked`] runs.
    /// `None` builds the alias table from the mode's config; cluster
    /// sweeps pass a shared handle so the O(keyspace) build happens once
    /// per `(keyspace, skew)` instead of once per server per sweep point.
    pub popularity: Option<std::sync::Arc<ZipfPopularity>>,
    /// This server's slice of the cluster's consistent-hash routing
    /// table. Required when the cache config asks for
    /// [`crate::CacheRouting::ConsistentHash`] — the ring spans servers,
    /// so only the cluster layer can build it. `None` otherwise.
    pub routed: Option<RoutedHandle>,
    /// Warm-up seconds (records discarded).
    pub warmup: f64,
    /// Measured seconds after warm-up.
    pub duration: f64,
    /// This server's compiled fault timeline (empty = healthy).
    pub faults: ServerFaults,
    /// Client resilience policy (passive by default).
    pub client: ClientPolicy,
    /// Sampling block size (≥ 1). Above 1, eligible runs (no faults, no
    /// timeout, fixed-ratio misses) take the block-batched fast path;
    /// `1` forces the scalar loop. Both consume the RNG stream in the
    /// same order, so the choice is invisible in the output.
    pub block: usize,
}

/// A resolved block of keys, structure-of-arrays: lane `i` of every
/// slice describes the same key, in arrival order. Blocks are only
/// produced on healthy fixed-ratio runs, so every key is first-attempt,
/// never forced, never degraded.
#[derive(Debug)]
pub struct KeyBlock<'a> {
    /// Arrival times.
    pub arrival: &'a [f64],
    /// Departure (service completion) times.
    pub completion: &'a [f64],
    /// Server latencies (`completion - arrival`).
    pub latency: &'a [f64],
    /// Cache-miss flags.
    pub missed: &'a [bool],
}

impl KeyBlock<'_> {
    /// Number of keys in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrival.len()
    }

    /// Whether the block is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrival.is_empty()
    }
}

/// Where resolved keys go: one at a time on the scalar path, a lane
/// block at a time on the batched path.
///
/// The default [`RecordSink::record_block`] just replays the block
/// through [`RecordSink::record`], reconstructing the exact
/// [`KeyRecord`] the scalar loop would have emitted — sinks override it
/// only to exploit the slice shape (bulk Welford/sketch pushes, column
/// appends).
pub trait RecordSink {
    /// Consumes one resolved key.
    fn record(&mut self, rec: &KeyRecord);

    /// Consumes a resolved block of keys (healthy, first-attempt keys
    /// only — see [`KeyBlock`]).
    fn record_block(&mut self, block: &KeyBlock<'_>) {
        for i in 0..block.len() {
            self.record(&KeyRecord {
                arrival: block.arrival[i],
                completion: block.completion[i],
                server_latency: block.latency[i],
                missed: block.missed[i],
                // Blocks exist only on the fixed-ratio path, which
                // carries no key identity.
                key: NO_KEY,
                forced: false,
                attempts: 1,
                degraded: false,
            });
        }
    }
}

impl<T: RecordSink + ?Sized> RecordSink for &mut T {
    fn record(&mut self, rec: &KeyRecord) {
        (**self).record(rec);
    }

    fn record_block(&mut self, block: &KeyBlock<'_>) {
        (**self).record_block(block);
    }
}

/// Adapts a per-record closure into a [`RecordSink`] (blocks replay
/// through the closure via the default [`RecordSink::record_block`]).
pub struct FnSink<F>(pub F);

impl<F: FnMut(&KeyRecord)> RecordSink for FnSink<F> {
    fn record(&mut self, rec: &KeyRecord) {
        (self.0)(rec);
    }
}

/// Reusable structure-of-arrays lanes for the block-batched hot path.
/// Holding one per server (e.g. in [`crate::SimScratch`]) means a sweep
/// allocates the lanes once and reuses them at every point.
#[derive(Debug, Default)]
pub struct BlockScratch {
    /// Arrival time of each staged key.
    arrival: Vec<f64>,
    /// Speculative arrival-pipeline lanes: banked gap bits, transformed
    /// gaps, and the kept batches' times/sizes (see
    /// [`BatchArrivals::fill_block_speculative`]).
    arrival_lanes: ArrivalScratch,
    /// Raw service-draw bits, banked in stream order.
    svc_bits: Vec<u64>,
    /// Raw miss-draw bits (empty when the miss ratio is 0).
    miss_bits: Vec<u64>,
    /// Transformed service times.
    service: Vec<f64>,
    /// Departure times from the Lindley scan.
    depart: Vec<f64>,
    /// Server latencies (`depart - arrival`).
    latency: Vec<f64>,
    /// Miss decisions.
    missed: Vec<bool>,
}

impl BlockScratch {
    /// Creates empty lanes.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the staging lanes, keeping their allocations.
    fn clear(&mut self) {
        self.arrival.clear();
        self.svc_bits.clear();
        self.miss_bits.clear();
    }
}

/// One key mid-flight through its attempts.
#[derive(Clone, Copy)]
struct PendingKey {
    /// Arrival time of the first attempt.
    first_arrival: f64,
    /// Attempts already issued (and failed).
    attempts: u32,
    /// Whether the key counts toward statistics (first arrival past
    /// warm-up).
    measured: bool,
}

/// Mutable simulation state threaded through attempt processing.
///
/// Resolved keys flow straight into `sink` — nothing is buffered here,
/// so a run's peak memory no longer scales with its key count.
struct LoopState<S> {
    station: FcfsStation,
    retry_q: RetryQueue<PendingKey>,
    sink: S,
    recorded: u64,
    misses: u64,
    resilience: ResilienceCounters,
}

impl<S: RecordSink> LoopState<S> {
    #[inline]
    fn emit(&mut self, rec: KeyRecord) {
        self.recorded += 1;
        self.sink.record(&rec);
    }
}

/// Environment (read-only knobs) for attempt processing.
struct AttemptEnv<'a> {
    service_rate: f64,
    cache_backed: bool,
    client: ClientPolicy,
    faults: &'a ServerFaults,
}

/// Handles a failed attempt detected at `detect`: schedule a backoff
/// retry if the budget allows, else record a forced miss.
fn fail_attempt<S: RecordSink, R: RngCore>(
    detect: f64,
    key: PendingKey,
    st: &mut LoopState<S>,
    env: &AttemptEnv<'_>,
    rng: &mut R,
) {
    let attempts = key.attempts + 1;
    if attempts < env.client.max_attempts() {
        let rp = env
            .client
            .retry
            .expect("max_attempts > 1 implies a retry policy");
        let mut r = &mut *rng;
        let delay =
            exponential_backoff(rp.base_backoff, rp.multiplier, rp.jitter, attempts, &mut r);
        if key.measured {
            st.resilience.retries += 1;
        }
        st.retry_q
            .push(detect + delay, PendingKey { attempts, ..key });
    } else if key.measured {
        // Graceful degradation: the key falls through to the database.
        st.resilience.forced_misses += 1;
        st.emit(KeyRecord {
            arrival: key.first_arrival,
            completion: detect,
            server_latency: detect - key.first_arrival,
            missed: false,
            // No key was ever sampled (every attempt failed before the
            // miss decision), so the forced database trip never
            // coalesces.
            key: NO_KEY,
            forced: true,
            attempts,
            degraded: false,
        });
    }
}

/// Processes one attempt of one key arriving at `t`.
///
/// On the healthy path (no faults scheduled, passive client) this draws
/// exactly the random variates of the pre-fault simulator — one service
/// sample, then the miss decision — so an empty [`crate::FaultPlan`]
/// is bit-identical to it.
#[inline]
fn process_attempt<S: RecordSink, R: RngCore>(
    t: f64,
    key: PendingKey,
    st: &mut LoopState<S>,
    decider: &mut dyn MissState,
    env: &AttemptEnv<'_>,
    rng: &mut R,
) {
    // A crashed server refuses the connection at the arrival instant:
    // no service is drawn, failure is detected immediately.
    if env.faults.crashed_at(t) {
        if key.measured {
            st.resilience.refused += 1;
        }
        fail_attempt(t, key, st, env, rng);
        return;
    }
    let mut svc = -memlat_dist::simd::dln(memlat_dist::open_unit(rng)) / env.service_rate;
    let degraded = env.faults.degraded_at(t);
    if degraded {
        svc *= env.faults.slow_factor_at(t);
    }
    let done = st.station.submit(t, svc);
    if let Some(timeout) = env.client.timeout {
        if done.sojourn() > timeout {
            // The client abandons at t + timeout; the server still
            // wastes the full service time on the dead request.
            if key.measured {
                st.resilience.timeouts += 1;
            }
            fail_attempt(t + timeout, key, st, env, rng);
            return;
        }
    }
    if key.measured {
        let (missed, key_id) = decider.decide(done.departure, rng);
        if missed {
            st.misses += 1;
        }
        st.emit(KeyRecord {
            arrival: key.first_arrival,
            completion: done.departure,
            server_latency: done.departure - key.first_arrival,
            missed,
            key: key_id,
            forced: false,
            attempts: key.attempts + 1,
            degraded,
        });
    } else if env.cache_backed {
        // Let the cache warm during warm-up without recording.
        let _ = decider.decide(done.departure, rng);
    }
}

/// Simulates one memcached server, streaming each resolved key into
/// `sink`: batch arrivals → FCFS exp(μ_S) service → miss decision per
/// key, with scheduled faults and client retries merged into the
/// arrival stream in global time order.
///
/// Records reach the sink in resolution-processing order — exactly the
/// order [`simulate_server`] stores them — and the RNG draw sequence is
/// identical, so the two entry points are bit-for-bit interchangeable.
/// The sink variant allocates no per-key memory.
///
/// # Errors
///
/// Returns [`ParamError`] when the miss mode's parameters are invalid.
pub fn simulate_server_streaming<S, R>(
    p: ServerSimParams<'_>,
    rng: &mut R,
    sink: S,
) -> Result<ServerRunStats, ParamError>
where
    S: FnMut(&KeyRecord),
    R: RngCore + Clone,
{
    simulate_server_streaming_with(p, rng, &mut BlockScratch::new(), FnSink(sink))
}

/// [`simulate_server_streaming`] generalized over the sink and staging
/// buffers: any [`RecordSink`] receives the resolved keys, and eligible
/// runs stage blocks in the caller's reusable [`BlockScratch`].
///
/// # Errors
///
/// Returns [`ParamError`] when the miss mode's parameters are invalid.
pub fn simulate_server_streaming_with<S, R>(
    p: ServerSimParams<'_>,
    rng: &mut R,
    scratch: &mut BlockScratch,
    sink: S,
) -> Result<ServerRunStats, ParamError>
where
    S: RecordSink,
    R: RngCore + Clone,
{
    let mut arrivals = BatchArrivals::new(p.interarrival, p.concurrency)?;
    let mut decider = build_miss_state(
        p.miss_mode,
        p.miss_ratio,
        p.popularity.as_ref(),
        p.routed.as_ref(),
    )?;
    let fixed = decider.fixed_ratio();
    let horizon = p.warmup + p.duration;
    let env = AttemptEnv {
        service_rate: p.service_rate,
        cache_backed: fixed.is_none(),
        client: p.client,
        faults: &p.faults,
    };
    let mut st = LoopState {
        station: FcfsStation::new(),
        retry_q: RetryQueue::new(),
        sink,
        recorded: 0,
        misses: 0,
        resilience: ResilienceCounters::default(),
    };

    // The block path needs every staged key to take the straight-line
    // serve→decide route: no crash/slowdown windows, no timeout (both
    // can fail an attempt mid-block, and without them no retry is ever
    // scheduled), and a miss decision that is a pure coin flip.
    let use_block =
        p.block > 1 && p.faults.is_empty() && p.client.timeout.is_none() && fixed.is_some();
    if use_block {
        let fixed_r = fixed.expect("block eligibility requires a fixed miss ratio");
        let draw_miss = fixed_r > 0.0;
        let mut pending: Option<(f64, u64)> = None;
        let mut done = false;
        // Warm-up keys stay on the scalar path (service draws only, no
        // records), so blocks never straddle the measurement boundary
        // and every staged key is measured.
        loop {
            let (t, batch) = arrivals.next_batch_with(rng);
            if t >= horizon {
                done = true;
                break;
            }
            if t >= p.warmup {
                pending = Some((t, batch));
                break;
            }
            let key = PendingKey {
                first_arrival: t,
                attempts: 0,
                measured: false,
            };
            for _ in 0..batch {
                process_attempt(t, key, &mut st, &mut *decider, &env, rng);
            }
        }
        // Gap laws with a block bits-kernel (exponential, GP — every law
        // the paper's sweeps use) take the speculative arrival pipeline;
        // the data-dependent laws stay on the scalar batch driver.
        let speculative = arrivals.speculative_supported();
        let key_draws = 1 + usize::from(draw_miss);
        while !done {
            scratch.clear();
            // Stage ≥ block keys (a batch is never split), banking the
            // raw bits of each key's draws in exactly the scalar order:
            // service uniform, then — when r > 0 — the miss uniform. The
            // warm-up loop's first post-warmup batch seeds the first
            // block; the rest stream through the speculative block
            // pipeline (or, for multi-draw gap laws, through
            // `drive_batches_with`, which hoists the gap-law dispatch out
            // of the per-batch loop).
            if let Some((t, batch)) = pending.take() {
                for _ in 0..batch {
                    scratch.arrival.push(t);
                    scratch.svc_bits.push(rng.next_u64());
                    if draw_miss {
                        scratch.miss_bits.push(rng.next_u64());
                    }
                }
            }
            if scratch.arrival.len() < p.block {
                if speculative {
                    // Bank raw gap bits and key bits in scalar draw order,
                    // transform the gap lane through the SIMD kernels, and
                    // prefix-sum the arrival times off the carried clock.
                    // The horizon trim inside rewinds the RNG to exactly
                    // the scalar stream position.
                    let BlockScratch {
                        arrival,
                        arrival_lanes,
                        svc_bits,
                        miss_bits,
                        ..
                    } = &mut *scratch;
                    done = arrivals.fill_block_speculative(
                        rng,
                        horizon,
                        p.block - arrival.len(),
                        key_draws,
                        arrival_lanes,
                        |batch, rng| {
                            for _ in 0..batch {
                                svc_bits.push(rng.next_u64());
                                if draw_miss {
                                    miss_bits.push(rng.next_u64());
                                }
                            }
                        },
                    );
                    // Expand kept batches into the per-key arrival lane,
                    // then drop the over-generated tail of the key lanes.
                    for (&t, &b) in arrival_lanes.times().iter().zip(arrival_lanes.sizes()) {
                        arrival.extend(std::iter::repeat_n(t, b as usize));
                    }
                    if done {
                        svc_bits.truncate(arrival.len());
                        if draw_miss {
                            miss_bits.truncate(arrival.len());
                        }
                    }
                } else {
                    arrivals.drive_batches_with(rng, |t, batch, rng| {
                        if t >= horizon {
                            done = true;
                            return false;
                        }
                        scratch
                            .arrival
                            .extend(std::iter::repeat_n(t, batch as usize));
                        for _ in 0..batch {
                            scratch.svc_bits.push(rng.next_u64());
                            if draw_miss {
                                scratch.miss_bits.push(rng.next_u64());
                            }
                        }
                        scratch.arrival.len() < p.block
                    });
                }
            }
            let n = scratch.arrival.len();
            if n == 0 {
                break;
            }
            // Deferred pure transforms, one contiguous lane at a time. The
            // service lane runs through the SIMD-dispatched kernel, which
            // is bit-identical to the scalar `-dln(u)/μ` the attempt path
            // draws.
            scratch.service.clear();
            memlat_dist::simd::exp_from_bits(
                &scratch.svc_bits,
                p.service_rate,
                &mut scratch.service,
            );
            scratch.depart.clear();
            scratch.depart.resize(n, 0.0);
            st.station
                .submit_block(&scratch.arrival, &scratch.service, &mut scratch.depart);
            scratch.latency.clear();
            scratch.latency.extend(
                scratch
                    .arrival
                    .iter()
                    .zip(&scratch.depart)
                    .map(|(&a, &d)| d - a),
            );
            scratch.missed.clear();
            if draw_miss {
                scratch.missed.extend(
                    scratch
                        .miss_bits
                        .iter()
                        .map(|&b| memlat_dist::open_unit_from_bits(b) < fixed_r),
                );
            } else {
                scratch.missed.resize(n, false);
            }
            st.recorded += n as u64;
            st.misses += scratch.missed.iter().map(|&m| u64::from(m)).sum::<u64>();
            st.sink.record_block(&KeyBlock {
                arrival: &scratch.arrival,
                completion: &scratch.depart,
                latency: &scratch.latency,
                missed: &scratch.missed,
            });
        }
    } else {
        loop {
            let (t, batch) = arrivals.next_batch_with(rng);
            if t >= horizon {
                break;
            }
            // Replay retries due up to (and at) this batch's arrival first,
            // keeping the station's arrival stream time-ordered.
            while let Some((u, key)) = st.retry_q.pop_before(t) {
                process_attempt(u, key, &mut st, &mut *decider, &env, rng);
            }
            let fresh = PendingKey {
                first_arrival: t,
                attempts: 0,
                measured: t >= p.warmup,
            };
            for _ in 0..batch {
                process_attempt(t, fresh, &mut st, &mut *decider, &env, rng);
            }
        }
    }
    // Fresh traffic stopped at the horizon; drain in-flight retries so
    // every issued key resolves (served or forced) — conservation. (The
    // block path schedules none; the queue is already empty there.)
    while let Some((u, key)) = st.retry_q.pop() {
        process_attempt(u, key, &mut st, &mut *decider, &env, rng);
    }

    let recorded = st.recorded as f64;
    let miss_ratio = decider.observed_miss_ratio().unwrap_or(if recorded > 0.0 {
        st.misses as f64 / recorded
    } else {
        0.0
    });
    // Tiny bias: utilization uses the full horizon (warm-up included).
    let utilization = st.station.utilization(horizon).min(1.0);
    let counters = ServerCounters {
        busy_time: st.station.busy_time(),
        queue_max: st.station.queue_max(),
        jobs: st.recorded,
        misses: st.misses,
    };
    let mut resilience = st.resilience;
    resilience.downtime = p.faults.downtime(horizon);
    resilience.degraded_time = p.faults.degraded_time(horizon);
    Ok(ServerRunStats {
        utilization,
        miss_ratio,
        key_rate: recorded / p.duration,
        counters,
        resilience,
        cached_items: decider.cached_items(),
    })
}

/// Simulates one memcached server and collects every per-key record —
/// the buffering wrapper around [`simulate_server_streaming`].
///
/// # Errors
///
/// Returns [`ParamError`] when the miss mode's parameters are invalid.
pub fn simulate_server<R: RngCore + Clone>(
    p: ServerSimParams<'_>,
    rng: &mut R,
) -> Result<ServerRun, ParamError> {
    let mut records = Vec::new();
    let stats = simulate_server_streaming(p, rng, |r: &KeyRecord| records.push(*r))?;
    Ok(ServerRun {
        records,
        utilization: stats.utilization,
        miss_ratio: stats.miss_ratio,
        key_rate: stats.key_rate,
        counters: stats.counters,
        resilience: stats.resilience,
        cached_items: stats.cached_items,
    })
}

/// Convenience: draw an exponential service sample (used by the database
/// stage as well).
pub fn exp_sample(rate: f64, rng: &mut impl Rng) -> f64 {
    -memlat_dist::simd::dln(memlat_dist::open_unit(rng)) / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, RetryPolicy};
    use memlat_dist::GeneralizedPareto;
    use memlat_workload::facebook;
    use rand::SeedableRng;

    fn healthy_params(duration: f64) -> ServerSimParams<'static> {
        ServerSimParams {
            interarrival: GapLaw::from(facebook::interarrival().unwrap()),
            concurrency: facebook::CONCURRENCY_Q,
            service_rate: facebook::SERVICE_RATE,
            miss_ratio: facebook::MISS_RATIO,
            miss_mode: &MissMode::FixedRatio,
            popularity: None,
            routed: None,
            warmup: 0.2,
            duration,
            faults: ServerFaults::none(),
            client: ClientPolicy::none(),
            block: 1,
        }
    }

    fn facebook_run(duration: f64, seed: u64) -> ServerRun {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        simulate_server(healthy_params(duration), &mut rng).unwrap()
    }

    #[test]
    fn rates_and_utilization_match_configuration() {
        let run = facebook_run(2.0, 1);
        assert!(
            (run.key_rate / facebook::KEY_RATE - 1.0).abs() < 0.05,
            "{}",
            run.key_rate
        );
        assert!((run.utilization - 0.78).abs() < 0.05, "{}", run.utilization);
        assert!((run.miss_ratio - 0.01).abs() < 0.005, "{}", run.miss_ratio);
        // Counters agree with the record-level view.
        assert_eq!(run.counters.jobs, run.records.len() as u64);
        assert_eq!(
            run.counters.misses,
            run.records.iter().filter(|r| r.missed).count() as u64
        );
        assert!(run.counters.queue_max >= 1);
        assert!(run.counters.busy_time > 0.0);
        // A healthy run observes no resilience activity at all.
        assert!(!run.resilience.any());
        assert!(run.records.iter().all(|r| r.attempts == 1 && !r.forced));
    }

    #[test]
    fn streaming_sink_sees_exactly_the_collected_records() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let collected = facebook_run(0.5, 12);
        let mut streamed: Vec<KeyRecord> = Vec::new();
        let stats = simulate_server_streaming(healthy_params(0.5), &mut rng, |r: &KeyRecord| {
            streamed.push(*r)
        })
        .unwrap();
        assert_eq!(streamed, collected.records);
        assert_eq!(stats.counters, collected.counters);
        assert_eq!(stats.utilization.to_bits(), collected.utilization.to_bits());
        assert_eq!(stats.miss_ratio.to_bits(), collected.miss_ratio.to_bits());
        assert_eq!(stats.key_rate.to_bits(), collected.key_rate.to_bits());
    }

    #[test]
    fn block_path_is_bit_identical_to_scalar() {
        use rand::RngCore;
        let mut scalar_rng = rand::rngs::StdRng::seed_from_u64(77);
        let scalar = simulate_server(healthy_params(0.5), &mut scalar_rng).unwrap();
        let scalar_next = scalar_rng.next_u64();
        // Power-of-two, odd, and larger-than-run block sizes all agree.
        for block in [2usize, 37, 1024, 1 << 22] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(77);
            let mut p = healthy_params(0.5);
            p.block = block;
            let blocked = simulate_server(p, &mut rng).unwrap();
            assert_eq!(scalar.records, blocked.records, "block={block}");
            assert_eq!(scalar.counters, blocked.counters, "block={block}");
            assert_eq!(scalar.utilization.to_bits(), blocked.utilization.to_bits());
            assert_eq!(scalar.miss_ratio.to_bits(), blocked.miss_ratio.to_bits());
            assert_eq!(scalar.key_rate.to_bits(), blocked.key_rate.to_bits());
            // Same RNG stream position afterwards: the block loop drew
            // exactly the scalar draws, nothing more.
            assert_eq!(scalar_next, rng.next_u64(), "block={block}");
        }
    }

    #[test]
    fn block_path_zero_miss_ratio_skips_miss_draws() {
        use rand::RngCore;
        let params = |block: usize| ServerSimParams {
            interarrival: GapLaw::from(facebook::interarrival().unwrap()),
            concurrency: 0.1,
            service_rate: facebook::SERVICE_RATE,
            miss_ratio: 0.0,
            miss_mode: &MissMode::FixedRatio,
            popularity: None,
            routed: None,
            warmup: 0.0,
            duration: 0.3,
            faults: ServerFaults::none(),
            client: ClientPolicy::none(),
            block,
        };
        let mut scalar_rng = rand::rngs::StdRng::seed_from_u64(78);
        let scalar = simulate_server(params(1), &mut scalar_rng).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        let blocked = simulate_server(params(512), &mut rng).unwrap();
        assert_eq!(scalar.records, blocked.records);
        assert!(blocked.records.iter().all(|r| !r.missed));
        assert_eq!(scalar_rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn block_sink_receives_whole_blocks() {
        // A sink that counts record_block calls proves the fast path is
        // actually taken (and that lanes agree with each other).
        struct Counting {
            records: Vec<KeyRecord>,
            blocks: usize,
        }
        impl RecordSink for Counting {
            fn record(&mut self, rec: &KeyRecord) {
                self.records.push(*rec);
            }
            fn record_block(&mut self, block: &KeyBlock<'_>) {
                assert!(!block.is_empty());
                assert_eq!(block.arrival.len(), block.completion.len());
                assert_eq!(block.arrival.len(), block.latency.len());
                assert_eq!(block.arrival.len(), block.missed.len());
                self.blocks += 1;
                for i in 0..block.len() {
                    assert!(block.completion[i] >= block.arrival[i]);
                    let lat = block.completion[i] - block.arrival[i];
                    assert_eq!(lat.to_bits(), block.latency[i].to_bits());
                }
                // Replay through the default path to keep `records`.
                struct Push<'a>(&'a mut Vec<KeyRecord>);
                impl RecordSink for Push<'_> {
                    fn record(&mut self, rec: &KeyRecord) {
                        self.0.push(*rec);
                    }
                }
                Push(&mut self.records).record_block(block);
            }
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(79);
        let mut p = healthy_params(0.5);
        p.block = 256;
        let mut sink = Counting {
            records: Vec::new(),
            blocks: 0,
        };
        let stats =
            simulate_server_streaming_with(p, &mut rng, &mut BlockScratch::new(), &mut sink)
                .unwrap();
        assert!(sink.blocks > 10, "{} blocks", sink.blocks);
        assert_eq!(sink.records.len() as u64, stats.counters.jobs);
        let baseline = facebook_run(0.5, 79);
        assert_eq!(sink.records, baseline.records);
    }

    #[test]
    fn latency_quantiles_inside_eq9_band() {
        // The per-key latency quantiles must fall between the model's
        // T_Q and T_C bounds (paper eq. 9 / Fig. 4).
        let run = facebook_run(4.0, 2);
        let gaps = GeneralizedPareto::facebook(0.15, 56_250.0).unwrap();
        let queue = memlat_queue::GixM1::new(&gaps, 0.1, 80_000.0).unwrap();
        let mut lats: Vec<f64> = run.records.iter().map(|r| r.server_latency).collect();
        lats.sort_by(f64::total_cmp);
        let ecdf = memlat_stats::Ecdf::from_sorted(lats);
        for k in [0.3, 0.6, 0.9] {
            let (lo, hi) = queue.key_latency_quantile_bounds(k);
            let measured = ecdf.quantile(k);
            // 12% slack for finite-run noise.
            assert!(
                measured > lo * 0.88 && measured < hi * 1.12,
                "k={k}: measured={measured} band=({lo}, {hi})"
            );
        }
    }

    #[test]
    fn records_are_causally_consistent() {
        let run = facebook_run(0.5, 3);
        for r in &run.records {
            assert!(r.completion >= r.arrival);
            assert!((r.server_latency - (r.completion - r.arrival)).abs() < 1e-12);
        }
        // Completions at one FCFS server are non-decreasing.
        assert!(run
            .records
            .windows(2)
            .all(|w| w[1].completion >= w[0].completion));
    }

    #[test]
    fn zero_miss_ratio_yields_no_misses() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let run = simulate_server(
            ServerSimParams {
                interarrival: GapLaw::from(facebook::interarrival().unwrap()),
                concurrency: 0.1,
                service_rate: facebook::SERVICE_RATE,
                miss_ratio: 0.0,
                miss_mode: &MissMode::FixedRatio,
                popularity: None,
                routed: None,
                warmup: 0.0,
                duration: 0.3,
                faults: ServerFaults::none(),
                client: ClientPolicy::none(),
                block: 1,
            },
            &mut rng,
        )
        .unwrap();
        assert!(run.records.iter().all(|r| !r.missed));
        assert_eq!(run.miss_ratio, 0.0);
    }

    #[test]
    fn cache_backed_mode_produces_emergent_misses() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mode = MissMode::CacheBacked(crate::config::CacheBackedConfig {
            memory_bytes: 8 << 20,
            keyspace: 200_000,
            skew: 1.01,
            mean_value_bytes: 300.0,
            routing: crate::config::CacheRouting::Independent,
        });
        let run = simulate_server(
            ServerSimParams {
                interarrival: GapLaw::from(facebook::interarrival().unwrap()),
                concurrency: 0.1,
                service_rate: facebook::SERVICE_RATE,
                miss_ratio: 0.0, // ignored in cache-backed mode
                miss_mode: &mode,
                popularity: None,
                routed: None,
                warmup: 0.5,
                duration: 0.5,
                faults: ServerFaults::none(),
                client: ClientPolicy::none(),
                block: 1,
            },
            &mut rng,
        )
        .unwrap();
        // Some misses, but far fewer than hits: a working cache.
        assert!(
            run.miss_ratio > 0.0 && run.miss_ratio < 0.5,
            "{}",
            run.miss_ratio
        );
        assert!(run.records.iter().any(|r| r.missed));
        assert!(run.records.iter().any(|r| !r.missed));
    }

    #[test]
    fn crash_without_retries_forces_misses() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut p = healthy_params(0.5);
        p.faults = FaultPlan::none().crash(0, 0.3, 0.5).for_server(0);
        let run = simulate_server(p, &mut rng).unwrap();
        assert!(run.resilience.refused > 0);
        assert_eq!(run.resilience.refused, run.resilience.forced_misses);
        assert_eq!(run.resilience.retries, 0);
        assert!((run.resilience.downtime - 0.2).abs() < 1e-12);
        // Refused keys resolve instantly at zero latency, served keys
        // keep positive latency.
        for r in &run.records {
            if r.forced {
                assert_eq!(r.server_latency, 0.0);
                assert!(!r.missed);
            } else {
                assert!(r.server_latency > 0.0);
            }
        }
    }

    #[test]
    fn retries_recover_keys_after_crash_window() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut p = healthy_params(0.5);
        // A short mid-window crash; generous retry budget with backoff
        // long enough to hop over the window.
        p.faults = FaultPlan::none().crash(0, 0.3, 0.32).for_server(0);
        p.client = ClientPolicy::none().retry(RetryPolicy {
            max_retries: 5,
            base_backoff: 10e-3,
            multiplier: 2.0,
            jitter: 0.1,
        });
        let run = simulate_server(p, &mut rng).unwrap();
        assert!(run.resilience.refused > 0);
        assert!(run.resilience.retries > 0);
        // The retry budget (5 × backoff ≥ 10 ms vs a 20 ms outage)
        // recovers every refused key.
        assert_eq!(run.resilience.forced_misses, 0);
        let recovered: Vec<_> = run.records.iter().filter(|r| r.attempts > 1).collect();
        assert!(!recovered.is_empty());
        for r in &recovered {
            assert!(r.attempts <= 6);
            // Recovered keys completed after the outage ended.
            assert!(r.completion > 0.32);
        }
    }

    #[test]
    fn slowdown_scales_latency_and_tags_degraded() {
        let base = facebook_run(0.5, 8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut p = healthy_params(0.5);
        p.faults = FaultPlan::none().slowdown(0, 0.3, 0.5, 4.0).for_server(0);
        let slow = simulate_server(p, &mut rng).unwrap();
        // Same seed, same draws: every key resolves, latency can only
        // grow, and keys inside the window are tagged.
        assert_eq!(slow.records.len(), base.records.len());
        assert!(slow.records.iter().any(|r| r.degraded));
        assert!(slow
            .records
            .iter()
            .zip(&base.records)
            .all(|(s, b)| s.server_latency >= b.server_latency));
        let mean_of = |pred: &dyn Fn(&KeyRecord) -> bool| {
            let lats: Vec<f64> = slow
                .records
                .iter()
                .filter(|r| pred(r))
                .map(|r| r.server_latency)
                .collect();
            lats.iter().sum::<f64>() / lats.len() as f64
        };
        let degraded_mean = mean_of(&|r| r.degraded);
        // Post-window keys inherit the residual backlog, so the clean
        // comparison is against keys that arrived *before* the window.
        let pre_window_mean = mean_of(&|r| r.arrival < 0.3);
        assert!(
            degraded_mean > pre_window_mean,
            "degraded {degraded_mean} vs pre-window {pre_window_mean}"
        );
        assert!((slow.resilience.degraded_time - 0.2).abs() < 1e-12);
        assert_eq!(slow.resilience.downtime, 0.0);
    }

    #[test]
    fn timeouts_are_detected_and_bounded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut p = healthy_params(0.5);
        // A heavy slowdown plus a tight timeout: long sojourns abandon.
        p.faults = FaultPlan::none().slowdown(0, 0.2, 0.7, 10.0).for_server(0);
        p.client = ClientPolicy::none().timeout(2e-3);
        let run = simulate_server(p, &mut rng).unwrap();
        assert!(run.resilience.timeouts > 0);
        assert_eq!(run.resilience.timeouts, run.resilience.forced_misses);
        // Served keys all resolved within the timeout.
        for r in run.records.iter().filter(|r| !r.forced) {
            assert!(r.server_latency <= 2e-3 + 1e-12);
        }
        // Forced keys gave up exactly at the timeout.
        for r in run.records.iter().filter(|r| r.forced) {
            assert!((r.server_latency - 2e-3).abs() < 1e-12);
        }
    }

    #[test]
    fn conservation_under_faults_and_retries() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let mut p = healthy_params(0.5);
        p.faults = FaultPlan::none()
            .crash(0, 0.25, 0.35)
            .slowdown(0, 0.4, 0.6, 5.0)
            .for_server(0);
        p.client = ClientPolicy::none()
            .timeout(1e-3)
            .retry(RetryPolicy::default());
        let max = p.client.max_attempts();
        let run = simulate_server(p, &mut rng).unwrap();
        let forced = run.records.iter().filter(|r| r.forced).count() as u64;
        let missed = run.records.iter().filter(|r| r.missed).count() as u64;
        let hits = run
            .records
            .iter()
            .filter(|r| !r.missed && !r.forced)
            .count() as u64;
        assert_eq!(forced, run.resilience.forced_misses);
        assert_eq!(hits + missed + forced, run.counters.jobs);
        assert!(run.resilience.timeouts + run.resilience.refused > 0);
        // Attempts never exceed the policy bound.
        assert!(run
            .records
            .iter()
            .all(|r| r.attempts >= 1 && r.attempts <= max));
    }
}
