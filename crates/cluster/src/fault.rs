//! Fault injection and client resilience policies.
//!
//! The paper validates its model on a healthy testbed; this module is
//! the simulator's stand-in for the unhealthy one. A [`FaultPlan`]
//! schedules per-server events in absolute simulated time — crashes
//! (the server refuses arrivals for a window) and slowdowns (service
//! times are multiplied by a factor inside a window). A
//! [`ClientPolicy`] describes how clients cope: a per-attempt timeout,
//! bounded retries with exponential backoff and jitter, and optional
//! hedged duplicate requests against a replica.
//!
//! Semantics (chosen to keep the per-server simulations embarrassingly
//! parallel and therefore bit-identical across thread counts):
//!
//! * **Crash** — arrivals inside the window are *refused* at their
//!   arrival instant (connection-refused, the fast failure mode of a
//!   dead TCP endpoint). Jobs already queued drain normally (graceful
//!   drain). A refused attempt is retried per the [`RetryPolicy`]; a
//!   key that exhausts its attempts falls through to the database as a
//!   **forced miss**.
//! * **Slowdown** — an attempt *arriving* inside the window has its
//!   service time multiplied by the window's factor (> 1 degrades, < 1
//!   would model a speedup). The key is tagged `degraded` so latency
//!   can be split by window.
//! * **Timeout** — an attempt whose sojourn exceeds the timeout is
//!   abandoned at `arrival + timeout` (the server still wastes the full
//!   service time — work the client no longer wants, exactly the
//!   overload amplification real fleets see). Retries/fall-through as
//!   for refusals.
//! * **Hedging** — after the per-server runs complete, keys whose
//!   primary latency exceeded [`HedgePolicy::delay`] draw a duplicate
//!   attempt from the replica server's latency population
//!   (`replica(j) = (j + 1) mod M`); the client keeps
//!   `min(primary, delay + replica)`. The draw happens in the
//!   deterministic merge step, in server order, from a dedicated RNG
//!   stream — thread-count independence is preserved. Hedges target the
//!   cache tier: the miss/database path of the key is unchanged.
//!
//! With [`FaultPlan::none`] and [`ClientPolicy::none`] every branch
//! above is dead and the simulator consumes exactly the random draws of
//! the pre-fault code path — output is bit-identical, locked by
//! `tests/fault_differential.rs`.

use memlat_des::fault::{Timeline, Window};

/// What goes wrong inside a fault window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The server is down: arrivals in the window are refused.
    Crash,
    /// Service times of attempts arriving in the window are multiplied
    /// by `factor` (> 1 is slower).
    Slowdown {
        /// Service-time multiplier (must be positive and finite).
        factor: f64,
    },
}

/// One scheduled per-server fault event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Which server the event applies to.
    pub server: usize,
    /// The absolute simulated-time window `[start, end)` (seconds,
    /// measured from time 0 — warm-up included).
    pub window: Window,
    /// What happens inside the window.
    pub kind: FaultKind,
}

/// A schedule of per-server fault events for one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: a healthy run, bit-identical to the pre-fault
    /// simulator.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Schedules a crash of `server` over `[start, end)`.
    #[must_use]
    pub fn crash(mut self, server: usize, start: f64, end: f64) -> Self {
        self.events.push(FaultEvent {
            server,
            window: Window::new(start, end),
            kind: FaultKind::Crash,
        });
        self
    }

    /// Schedules a service slowdown of `server` over `[start, end)`.
    #[must_use]
    pub fn slowdown(mut self, server: usize, start: f64, end: f64, factor: f64) -> Self {
        self.events.push(FaultEvent {
            server,
            window: Window::new(start, end),
            kind: FaultKind::Slowdown { factor },
        });
        self
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, in insertion order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Validates the plan against a cluster of `servers` servers.
    ///
    /// # Errors
    ///
    /// Returns a message if an event names a server out of range, a
    /// slowdown factor is non-positive/non-finite, or two same-kind
    /// windows on one server overlap (overlap would make downtime
    /// accounting ambiguous).
    pub fn validate(&self, servers: usize) -> Result<(), String> {
        for e in &self.events {
            if e.server >= servers {
                return Err(format!(
                    "fault event targets server {} but the cluster has {servers}",
                    e.server
                ));
            }
            if let FaultKind::Slowdown { factor } = e.kind {
                if !(factor.is_finite() && factor > 0.0) {
                    return Err(format!("slowdown factor must be positive, got {factor}"));
                }
            }
        }
        for j in 0..servers {
            for crash in [true, false] {
                let mut wins: Vec<Window> = self
                    .events
                    .iter()
                    .filter(|e| e.server == j && matches!(e.kind, FaultKind::Crash) == crash)
                    .map(|e| e.window)
                    .collect();
                wins.sort_by(|a, b| a.start.total_cmp(&b.start));
                for pair in wins.windows(2) {
                    if pair[1].start < pair[0].end {
                        return Err(format!(
                            "overlapping fault windows on server {j}: [{}, {}) and [{}, {})",
                            pair[0].start, pair[0].end, pair[1].start, pair[1].end
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Compiles the per-server view of the plan.
    #[must_use]
    pub fn for_server(&self, server: usize) -> ServerFaults {
        let crash = Timeline::new(
            self.events
                .iter()
                .filter(|e| e.server == server && matches!(e.kind, FaultKind::Crash))
                .map(|e| e.window)
                .collect(),
        );
        let mut slow: Vec<(Window, f64)> = self
            .events
            .iter()
            .filter(|e| e.server == server)
            .filter_map(|e| match e.kind {
                FaultKind::Slowdown { factor } => Some((e.window, factor)),
                FaultKind::Crash => None,
            })
            .collect();
        slow.sort_by(|a, b| a.0.start.total_cmp(&b.0.start));
        ServerFaults { crash, slow }
    }
}

/// One server's compiled fault timeline, queried by the server loop.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerFaults {
    crash: Timeline,
    slow: Vec<(Window, f64)>,
}

impl ServerFaults {
    /// A healthy server: nothing scheduled.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether nothing is scheduled for this server.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.crash.is_empty() && self.slow.is_empty()
    }

    /// Whether the server is crashed (refusing arrivals) at `t`.
    #[must_use]
    pub fn crashed_at(&self, t: f64) -> bool {
        self.crash.contains(t)
    }

    /// The service-time multiplier in force at `t` (1.0 when healthy).
    #[must_use]
    pub fn slow_factor_at(&self, t: f64) -> f64 {
        self.slow
            .iter()
            .find(|(w, _)| w.contains(t))
            .map_or(1.0, |&(_, f)| f)
    }

    /// Whether `t` falls inside a slowdown window.
    #[must_use]
    pub fn degraded_at(&self, t: f64) -> bool {
        self.slow.iter().any(|(w, _)| w.contains(t))
    }

    /// Scheduled crash seconds within `[0, horizon)`.
    #[must_use]
    pub fn downtime(&self, horizon: f64) -> f64 {
        self.crash.covered_time(horizon)
    }

    /// Scheduled slowdown seconds within `[0, horizon)`.
    #[must_use]
    pub fn degraded_time(&self, horizon: f64) -> f64 {
        self.slow.iter().map(|(w, _)| w.clamped_len(horizon)).sum()
    }
}

/// Bounded retry with exponential backoff and jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum re-issues per key (0 = fail straight to the database).
    pub max_retries: u32,
    /// Delay before the first retry (seconds).
    pub base_backoff: f64,
    /// Backoff growth per retry (≥ 1; 2.0 = classic doubling).
    pub multiplier: f64,
    /// Jitter fraction: the delay is multiplied by `1 + jitter·U[0,1)`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            base_backoff: 500e-6,
            multiplier: 2.0,
            jitter: 0.1,
        }
    }
}

/// Hedged requests: after `delay` seconds without a response, send a
/// duplicate to the replica and keep whichever finishes first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Hedge trigger delay (seconds); a ~p95 of healthy latency is the
    /// classic choice ("The Tail at Scale").
    pub delay: f64,
}

/// Client-side resilience configuration.
///
/// The default ([`ClientPolicy::none`]) disables everything and keeps
/// the simulator bit-identical to the pre-fault code path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClientPolicy {
    /// Per-attempt timeout (seconds). `None` waits forever (except for
    /// crash refusals, which fail immediately).
    pub timeout: Option<f64>,
    /// Retry policy for timed-out/refused attempts. `None` means a
    /// failed key falls through to the database immediately.
    pub retry: Option<RetryPolicy>,
    /// Hedged-duplicate policy. `None` disables hedging.
    pub hedge: Option<HedgePolicy>,
}

impl ClientPolicy {
    /// The passive client: no timeout, no retries, no hedging.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Sets the per-attempt timeout.
    #[must_use]
    pub fn timeout(mut self, seconds: f64) -> Self {
        self.timeout = Some(seconds);
        self
    }

    /// Enables retries with the given policy.
    #[must_use]
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Enables hedging with the given trigger delay.
    #[must_use]
    pub fn hedge(mut self, delay: f64) -> Self {
        self.hedge = Some(HedgePolicy { delay });
        self
    }

    /// Total attempts allowed per key (first try + retries).
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        1 + self.retry.map_or(0, |r| r.max_retries)
    }

    /// Validates the policy values.
    ///
    /// # Errors
    ///
    /// Returns a message for non-positive timeout/backoff/delay, a
    /// multiplier below 1, or negative jitter.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(t) = self.timeout {
            if !(t.is_finite() && t > 0.0) {
                return Err(format!("client timeout must be positive, got {t}"));
            }
        }
        if let Some(r) = self.retry {
            if !(r.base_backoff.is_finite() && r.base_backoff > 0.0) {
                return Err(format!(
                    "retry base_backoff must be positive, got {}",
                    r.base_backoff
                ));
            }
            if !(r.multiplier.is_finite() && r.multiplier >= 1.0) {
                return Err(format!(
                    "retry multiplier must be >= 1, got {}",
                    r.multiplier
                ));
            }
            if !(r.jitter.is_finite() && r.jitter >= 0.0) {
                return Err(format!(
                    "retry jitter must be non-negative, got {}",
                    r.jitter
                ));
            }
        }
        if let Some(h) = self.hedge {
            if !(h.delay.is_finite() && h.delay > 0.0) {
                return Err(format!("hedge delay must be positive, got {}", h.delay));
            }
        }
        Ok(())
    }
}

/// The hedged completion of one key: the client keeps whichever attempt
/// finishes first, so the effective latency is
/// `min(primary, delay + replica)`; the hedge "wins" when the replica
/// attempt beats the primary.
#[must_use]
pub fn hedge_outcome(primary: f64, delay: f64, replica: f64) -> (f64, bool) {
    let hedged = delay + replica;
    if hedged < primary {
        (hedged, true)
    } else {
        (primary, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builders_and_queries() {
        let plan = FaultPlan::none()
            .crash(0, 1.0, 2.0)
            .slowdown(1, 0.5, 1.5, 3.0)
            .crash(0, 3.0, 4.0);
        assert!(!plan.is_empty());
        assert_eq!(plan.events().len(), 3);
        assert!(plan.validate(2).is_ok());
        assert!(plan.validate(1).is_err()); // server 1 out of range

        let s0 = plan.for_server(0);
        assert!(s0.crashed_at(1.5) && !s0.crashed_at(2.5) && s0.crashed_at(3.0));
        assert_eq!(s0.slow_factor_at(1.0), 1.0);
        assert!((s0.downtime(10.0) - 2.0).abs() < 1e-12);
        assert!((s0.downtime(1.5) - 0.5).abs() < 1e-12);
        assert_eq!(s0.degraded_time(10.0), 0.0);

        let s1 = plan.for_server(1);
        assert!(!s1.crashed_at(1.0));
        assert_eq!(s1.slow_factor_at(1.0), 3.0);
        assert!(s1.degraded_at(0.5) && !s1.degraded_at(1.5));
        assert!((s1.degraded_time(1.0) - 0.5).abs() < 1e-12);

        assert!(FaultPlan::none().is_empty());
        assert!(ServerFaults::none().is_empty());
    }

    #[test]
    fn plan_rejects_bad_factor_and_overlap() {
        let bad = FaultPlan::none().slowdown(0, 0.0, 1.0, 0.0);
        assert!(bad.validate(4).is_err());
        let overlap = FaultPlan::none().crash(0, 0.0, 1.0).crash(0, 0.5, 2.0);
        assert!(overlap.validate(4).is_err());
        // Different kinds may overlap (crash beats slowdown at query
        // time), and different servers never conflict.
        let ok = FaultPlan::none()
            .crash(0, 0.0, 1.0)
            .slowdown(0, 0.5, 2.0, 2.0)
            .crash(1, 0.0, 1.0);
        assert!(ok.validate(4).is_ok());
    }

    #[test]
    fn client_policy_validation() {
        assert!(ClientPolicy::none().validate().is_ok());
        assert_eq!(ClientPolicy::none().max_attempts(), 1);
        let p = ClientPolicy::none()
            .timeout(1e-3)
            .retry(RetryPolicy::default())
            .hedge(300e-6);
        assert!(p.validate().is_ok());
        assert_eq!(p.max_attempts(), 3);
        assert!(ClientPolicy::none().timeout(0.0).validate().is_err());
        assert!(ClientPolicy::none().hedge(-1.0).validate().is_err());
        let bad_retry = ClientPolicy::none().retry(RetryPolicy {
            multiplier: 0.5,
            ..RetryPolicy::default()
        });
        assert!(bad_retry.validate().is_err());
    }

    #[test]
    fn hedge_outcome_is_min() {
        let (eff, won) = hedge_outcome(10.0, 1.0, 2.0);
        assert_eq!(eff, 3.0);
        assert!(won);
        let (eff, won) = hedge_outcome(2.0, 1.0, 2.0);
        assert_eq!(eff, 2.0);
        assert!(!won);
    }
}
