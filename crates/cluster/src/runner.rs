//! Parallel replications.
//!
//! The paper reports confidence intervals over a long run; we get the
//! same statistical strength from several shorter independent
//! replications run across threads (`std::thread::scope` — no
//! `'static` bounds needed).

use memlat_stats::{ConfidenceInterval, QuantileSketch, StreamingStats};
use rand::SeedableRng;

use crate::{assembly::assemble_requests, config::SimConfig, sim::ClusterSim, SimError};

/// Per-replication summary statistics aggregated over seeds.
///
/// The intervals are 95% **Student-t** over the replication means
/// (`df = replications − 1`): with the 3–8 replications the
/// conformance profiles run, the t critical value is what makes the
/// claimed coverage honest.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicatedStats {
    /// Mean/CI of `E[T_S(N)]` across replications.
    pub ts: ConfidenceInterval,
    /// Mean/CI of `E[T_D(N)]` across replications.
    pub td: ConfidenceInterval,
    /// Mean/CI of `E[T(N)]` across replications.
    pub total: ConfidenceInterval,
    /// Mean observed miss ratio.
    pub miss_ratio: f64,
    /// Mean observed utilization of the heaviest server.
    pub peak_utilization: f64,
    /// Number of replications.
    pub replications: usize,
    /// Pooled per-key server-latency quantile sketch, merged over all
    /// replications in replication order (merge order does not affect
    /// the state — sketch merging is exact).
    pub latency_sketch: QuantileSketch,
}

/// Runs `replications` independent simulations (seeds `base_seed..`),
/// assembling `requests_per_rep` requests of `n` keys in each, in
/// parallel.
///
/// # Errors
///
/// Propagates the first simulation error encountered.
pub fn run_replications(
    cfg: &SimConfig,
    n: u64,
    replications: usize,
    requests_per_rep: usize,
) -> Result<ReplicatedStats, SimError> {
    let mut results: Vec<Option<Result<RepResult, SimError>>> = Vec::new();
    results.resize_with(replications, || None);

    std::thread::scope(|scope| {
        for (i, slot) in results.iter_mut().enumerate() {
            let cfg = cfg.clone();
            scope.spawn(move || {
                *slot = Some(run_one(cfg, n, i as u64, requests_per_rep));
            });
        }
    });

    let mut ts = StreamingStats::new();
    let mut td = StreamingStats::new();
    let mut total = StreamingStats::new();
    let mut miss = StreamingStats::new();
    let mut peak = StreamingStats::new();
    let mut latency_sketch = QuantileSketch::new();
    for r in results.into_iter().flatten() {
        let r = r?;
        ts.push(r.ts);
        td.push(r.td);
        total.push(r.total);
        miss.push(r.miss_ratio);
        peak.push(r.peak_utilization);
        latency_sketch.merge(&r.latency_sketch);
    }

    // Student-t intervals: the sample size here is the handful of
    // replications (not the millions of keys inside each), so the
    // normal critical value would be badly overconfident.
    Ok(ReplicatedStats {
        ts: ConfidenceInterval::for_mean_t(&ts, 0.95),
        td: ConfidenceInterval::for_mean_t(&td, 0.95),
        total: ConfidenceInterval::for_mean_t(&total, 0.95),
        miss_ratio: miss.mean(),
        peak_utilization: peak.mean(),
        replications,
        latency_sketch,
    })
}

struct RepResult {
    ts: f64,
    td: f64,
    total: f64,
    miss_ratio: f64,
    peak_utilization: f64,
    latency_sketch: QuantileSketch,
}

fn run_one(cfg: SimConfig, n: u64, rep: u64, requests: usize) -> Result<RepResult, SimError> {
    let cfg = cfg
        .clone()
        .seed(memlat_des::rng::splitmix64(cfg.seed ^ (rep + 1)));
    let out = ClusterSim::run(&cfg)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0xa55e);
    let stats = assemble_requests(&out, n, requests, &mut rng);
    let peak = out.utilization().iter().copied().fold(0.0f64, f64::max);
    Ok(RepResult {
        ts: stats.ts.mean,
        td: stats.td.mean,
        total: stats.total.mean,
        miss_ratio: out.miss_ratio(),
        peak_utilization: peak,
        latency_sketch: out.pooled_latency_sketch(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlat_model::ModelParams;

    #[test]
    fn replications_tighten_estimates() {
        let params = ModelParams::builder().build().unwrap();
        let cfg = SimConfig::new(params).duration(0.3).warmup(0.05).seed(99);
        let stats = run_replications(&cfg, 150, 4, 4_000).unwrap();
        assert_eq!(stats.replications, 4);
        // Means in the Table-3 regime.
        assert!(
            stats.ts.mean > 150e-6 && stats.ts.mean < 800e-6,
            "{}",
            stats.ts.mean
        );
        assert!((stats.miss_ratio - 0.01).abs() < 0.005);
        assert!((stats.peak_utilization - 0.78).abs() < 0.1);
        // CI endpoints are ordered.
        assert!(stats.ts.lower <= stats.ts.mean && stats.ts.mean <= stats.ts.upper);
        assert!(stats.total.mean >= stats.ts.mean);
        assert!(stats.td.mean > 0.0);
        // The pooled sketch covers every recorded key of every rep, and
        // its high quantile is in the same regime as the ts estimate.
        assert!(stats.latency_sketch.count() > 0);
        let p99 = stats.latency_sketch.quantile(0.99);
        assert!(p99 > 50e-6 && p99 < 2e-3, "{p99}");
    }

    #[test]
    fn replications_are_deterministic() {
        let params = ModelParams::builder().build().unwrap();
        let cfg = SimConfig::new(params).duration(0.2).warmup(0.05).seed(7);
        let a = run_replications(&cfg, 150, 3, 2_000).unwrap();
        let b = run_replications(&cfg, 150, 3, 2_000).unwrap();
        assert_eq!(a, b);
    }
}
