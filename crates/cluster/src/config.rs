//! Simulation configuration.

use memlat_model::ModelParams;

use crate::fault::{ClientPolicy, FaultPlan};
use crate::SimError;

/// How cache misses are decided at each simulated memcached server.
#[derive(Debug, Clone, PartialEq)]
pub enum MissMode {
    /// Each key misses independently with the model's ratio `r` — the
    /// paper's assumption.
    FixedRatio,
    /// Each key consults a real slab/LRU store fed by Zipf-popular keys;
    /// the miss ratio *emerges* from memory size, item sizes and skew
    /// (extension experiment).
    CacheBacked(CacheBackedConfig),
}

/// How cache misses are relayed to the database stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissRelay {
    /// Every miss is an independent database trip — the paper's model.
    #[default]
    Independent,
    /// Per-key fetch coalescing: the first miss for a key dispatches the
    /// database fetch; concurrent misses for the same key park as
    /// waiters and resolve at that fetch's completion time ("delayed
    /// hits", Atre et al. SIGCOMM 2020; Jiang & Ma arXiv 2505.15531).
    /// Only keyed misses coalesce — [`MissMode::FixedRatio`] carries no
    /// key identity, so under it this mode is bit-identical to
    /// [`MissRelay::Independent`].
    Coalesced,
}

/// How keys reach cache-backed servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheRouting {
    /// Every server samples the full Zipf population independently —
    /// statistically a cluster whose clients spray keys uniformly, so
    /// each cache stores its own copy of the hot set.
    #[default]
    Independent,
    /// Cluster-wide consistent hashing: the global Zipf stream is
    /// partitioned over servers by a hash ring with virtual nodes, so
    /// each server caches only the keys it owns (memcached's actual
    /// deployment model). Per-server load becomes the ring-induced
    /// shares `{p_j}`, and the cluster-wide miss ratio follows the
    /// Ji/Quan/Tan single-LRU asymptotic at the *total* capacity.
    ConsistentHash {
        /// Virtual nodes per server on the ring.
        vnodes: usize,
    },
}

/// Configuration for [`MissMode::CacheBacked`].
///
/// This struct is the single source of truth for the cached key
/// population: the cluster builds its Zipf sampler (and, under
/// [`CacheRouting::ConsistentHash`], its routing table) from these
/// fields, and every layer below validates against them rather than
/// carrying its own copy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheBackedConfig {
    /// Memory budget per server (bytes).
    pub memory_bytes: usize,
    /// Number of distinct keys in the population.
    pub keyspace: u64,
    /// Zipf popularity exponent.
    pub skew: f64,
    /// Mean value size in bytes (drawn from the Facebook value-size law
    /// scaled to this mean).
    pub mean_value_bytes: f64,
    /// How keys are routed to servers.
    pub routing: CacheRouting,
}

impl Default for CacheBackedConfig {
    fn default() -> Self {
        Self {
            memory_bytes: 64 << 20,
            keyspace: 5_000_000,
            skew: 1.01,
            mean_value_bytes: 329.0,
            routing: CacheRouting::Independent,
        }
    }
}

impl CacheBackedConfig {
    /// Validates the cache population parameters.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.memory_bytes == 0 {
            return Err("cache memory budget must be positive".into());
        }
        if self.keyspace == 0 {
            return Err("cache keyspace must be non-empty".into());
        }
        if !(self.skew.is_finite() && self.skew > 0.0) {
            return Err(format!("cache skew must be positive, got {}", self.skew));
        }
        if !(self.mean_value_bytes.is_finite() && self.mean_value_bytes > 0.0) {
            return Err(format!(
                "mean value size must be positive, got {}",
                self.mean_value_bytes
            ));
        }
        if let CacheRouting::ConsistentHash { vnodes } = self.routing {
            if vnodes == 0 {
                return Err("consistent-hash routing needs at least one virtual node".into());
            }
        }
        Ok(())
    }
}

/// What per-key data a simulation run keeps in memory.
///
/// Streaming summaries (Welford statistics, quantile sketch, activity
/// counters) are always collected; this only controls the raw buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Retention {
    /// Keep every per-key `(server, db)` latency pair — required by
    /// request assembly ([`crate::assembly`]) and exact ECDFs.
    #[default]
    Full,
    /// Drop per-key buffers as soon as each server's summaries are
    /// folded in: memory stays `O(servers + sketch bins)` regardless of
    /// duration. Quantiles are answered by the sketch (≤ 1% relative
    /// error); [`crate::SimOutput::records`] becomes unavailable.
    Summary,
}

/// Full simulation configuration: the paper's model parameters plus
/// simulation controls.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// The system being simulated.
    pub params: ModelParams,
    /// Simulated seconds of traffic (after warm-up).
    pub duration: f64,
    /// Warm-up seconds discarded from all statistics.
    pub warmup: f64,
    /// Master seed; every internal stream derives from it.
    pub seed: u64,
    /// Number of database shards. The model assumes the database stage is
    /// heavily offloaded (`ρ_D ≪ 1`); shards keep that true under high
    /// aggregate miss rates. `0` means auto-size to ≤ 5% per-shard
    /// utilization.
    pub db_shards: usize,
    /// Miss decision mode.
    pub miss_mode: MissMode,
    /// Miss relay mode: independent database trips (the paper) or
    /// per-key fetch coalescing with delayed hits.
    pub miss_relay: MissRelay,
    /// Worker threads for the per-server simulations. `1` forces the
    /// legacy sequential path; `0` (default) auto-detects: the
    /// `MEMLAT_THREADS` environment variable if set, else the machine's
    /// available parallelism. Any value produces bit-identical output —
    /// every server draws from its own seed-derived RNG stream and
    /// results are merged in server order.
    pub threads: usize,
    /// Per-key data retention policy.
    pub retention: Retention,
    /// Sampling block size for the per-server hot loop. Keys are staged
    /// in fixed-size structure-of-arrays blocks so the uniform→law
    /// transforms and the FCFS Lindley scan run over contiguous slices.
    /// `1` forces the scalar path; `0` (default) auto-detects: the
    /// `MEMLAT_BLOCK` environment variable if set, else 1024. Any value
    /// produces bit-identical output — blocks consume the per-server RNG
    /// stream in exactly the scalar order.
    pub block: usize,
    /// Scheduled per-server faults (crashes, slowdowns). Empty by
    /// default: the healthy run is bit-identical to the pre-fault
    /// simulator.
    pub fault_plan: FaultPlan,
    /// Client-side resilience: timeout, bounded retries, hedging.
    /// Passive by default.
    pub client: ClientPolicy,
}

impl SimConfig {
    /// A configuration with sensible defaults: 2 s of traffic, 0.2 s
    /// warm-up, fixed-ratio misses, auto-sized database shards.
    #[must_use]
    pub fn new(params: ModelParams) -> Self {
        Self {
            params,
            duration: 2.0,
            warmup: 0.2,
            seed: 0x6d656d6c,
            db_shards: 0,
            miss_mode: MissMode::FixedRatio,
            miss_relay: MissRelay::Independent,
            threads: 0,
            retention: Retention::default(),
            block: 0,
            fault_plan: FaultPlan::none(),
            client: ClientPolicy::none(),
        }
    }

    /// Sets the measured duration (seconds).
    #[must_use]
    pub fn duration(mut self, secs: f64) -> Self {
        self.duration = secs;
        self
    }

    /// Sets the warm-up period (seconds).
    #[must_use]
    pub fn warmup(mut self, secs: f64) -> Self {
        self.warmup = secs;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of database shards (0 = auto).
    #[must_use]
    pub fn db_shards(mut self, shards: usize) -> Self {
        self.db_shards = shards;
        self
    }

    /// Sets the miss mode.
    #[must_use]
    pub fn miss_mode(mut self, mode: MissMode) -> Self {
        self.miss_mode = mode;
        self
    }

    /// Sets the miss relay mode.
    #[must_use]
    pub fn miss_relay(mut self, relay: MissRelay) -> Self {
        self.miss_relay = relay;
        self
    }

    /// Sets the worker thread count (`0` = auto, `1` = sequential).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the per-key data retention policy.
    #[must_use]
    pub fn retention(mut self, retention: Retention) -> Self {
        self.retention = retention;
        self
    }

    /// Sets the sampling block size (`0` = auto, `1` = scalar path).
    #[must_use]
    pub fn block(mut self, block: usize) -> Self {
        self.block = block;
        self
    }

    /// Sets the fault-injection plan.
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Sets the client resilience policy.
    #[must_use]
    pub fn client(mut self, client: ClientPolicy) -> Self {
        self.client = client;
        self
    }

    /// Validates the simulation controls.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for non-positive durations or
    /// a negative warm-up.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.duration.is_finite() && self.duration > 0.0) {
            return Err(SimError::InvalidConfig(format!(
                "duration must be positive, got {}",
                self.duration
            )));
        }
        if !(self.warmup.is_finite() && self.warmup >= 0.0) {
            return Err(SimError::InvalidConfig(format!(
                "warmup must be non-negative, got {}",
                self.warmup
            )));
        }
        if let MissMode::CacheBacked(cache) = &self.miss_mode {
            cache.validate().map_err(SimError::InvalidConfig)?;
        }
        self.fault_plan
            .validate(self.params.servers())
            .map_err(SimError::InvalidConfig)?;
        self.client.validate().map_err(SimError::InvalidConfig)?;
        Ok(())
    }

    /// The number of database shards to actually use: the explicit value,
    /// or enough shards to keep each below 5% utilization under the
    /// expected aggregate miss rate.
    #[must_use]
    pub fn effective_db_shards(&self) -> usize {
        if self.db_shards > 0 {
            return self.db_shards;
        }
        let miss_rate = self.params.total_key_rate() * self.params.miss_ratio();
        let per_shard_target = 0.05 * self.params.db_service_rate();
        ((miss_rate / per_shard_target).ceil() as usize).max(1)
    }

    /// The worker thread count to actually use: the explicit value, else
    /// `MEMLAT_THREADS`, else the machine's available parallelism.
    /// Always at least 1.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Ok(v) = std::env::var("MEMLAT_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }

    /// The sampling block size to actually use: the explicit value, else
    /// `MEMLAT_BLOCK`, else 1024. Always at least 1.
    #[must_use]
    pub fn effective_block(&self) -> usize {
        if self.block > 0 {
            return self.block;
        }
        if let Ok(v) = std::env::var("MEMLAT_BLOCK") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ModelParams {
        ModelParams::builder().build().unwrap()
    }

    #[test]
    fn builder_chain() {
        let c = SimConfig::new(base())
            .duration(1.0)
            .warmup(0.1)
            .seed(9)
            .db_shards(3)
            .threads(2)
            .retention(Retention::Summary)
            .block(256);
        assert_eq!(c.duration, 1.0);
        assert_eq!(c.warmup, 0.1);
        assert_eq!(c.seed, 9);
        assert_eq!(c.effective_db_shards(), 3);
        assert_eq!(c.effective_threads(), 2);
        assert_eq!(c.retention, Retention::Summary);
        assert_eq!(c.effective_block(), 256);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn thread_auto_detection_is_positive() {
        let c = SimConfig::new(base());
        assert_eq!(c.threads, 0);
        assert_eq!(c.retention, Retention::Full);
        assert!(c.effective_threads() >= 1);
    }

    #[test]
    fn block_auto_detection_defaults_to_1024() {
        let c = SimConfig::new(base());
        assert_eq!(c.block, 0);
        // The env override is exercised by the differential suites; in a
        // clean environment auto means the tuned default.
        if std::env::var("MEMLAT_BLOCK").is_err() {
            assert_eq!(c.effective_block(), 1024);
        }
        assert_eq!(c.block(1).effective_block(), 1);
    }

    #[test]
    fn validation_catches_bad_durations() {
        assert!(SimConfig::new(base()).duration(0.0).validate().is_err());
        assert!(SimConfig::new(base())
            .duration(f64::NAN)
            .validate()
            .is_err());
        assert!(SimConfig::new(base()).warmup(-1.0).validate().is_err());
    }

    #[test]
    fn auto_shards_keep_db_offloaded() {
        // Base config: 250 Kps × 1% = 2.5 K misses/s vs μ_D = 1 Kps ⇒
        // needs 50 shards at the 5% target.
        let c = SimConfig::new(base());
        assert_eq!(c.effective_db_shards(), 50);
        // Zero miss ratio still yields at least one shard.
        let p = base().with_miss_ratio(0.0).unwrap();
        assert_eq!(SimConfig::new(p).effective_db_shards(), 1);
    }

    #[test]
    fn miss_relay_defaults_to_independent() {
        let c = SimConfig::new(base());
        assert_eq!(c.miss_relay, MissRelay::Independent);
        assert_eq!(
            c.miss_relay(MissRelay::Coalesced).miss_relay,
            MissRelay::Coalesced
        );
    }

    #[test]
    fn cache_backed_defaults() {
        let c = CacheBackedConfig::default();
        assert!(c.memory_bytes > 0);
        assert!(c.skew > 1.0);
        assert_eq!(c.routing, CacheRouting::Independent);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn cache_backed_validation_rejects_degenerate_fields() {
        let check = |f: fn(&mut CacheBackedConfig)| {
            let mut c = CacheBackedConfig::default();
            f(&mut c);
            c.validate()
        };
        assert!(check(|c| c.memory_bytes = 0).is_err());
        assert!(check(|c| c.keyspace = 0).is_err());
        assert!(check(|c| c.skew = f64::NAN).is_err());
        assert!(check(|c| c.skew = -1.0).is_err());
        assert!(check(|c| c.mean_value_bytes = 0.0).is_err());
        assert!(check(|c| c.routing = CacheRouting::ConsistentHash { vnodes: 0 }).is_err());
        assert!(check(|c| c.routing = CacheRouting::ConsistentHash { vnodes: 64 }).is_ok());
        // The sim-level validate runs the same checks.
        let bad = CacheBackedConfig {
            keyspace: 0,
            ..CacheBackedConfig::default()
        };
        let c = SimConfig::new(base()).miss_mode(MissMode::CacheBacked(bad));
        assert!(c.validate().is_err());
    }
}
