//! Structure-of-arrays storage for per-key `(s, d)` outcomes.
//!
//! The simulator records one `(server latency, db latency)` pair per key.
//! Storing the two components in parallel `Vec<f32>` columns (instead of
//! a `Vec<(f32, f32)>` of pairs) lets the hedging pass and the pooled
//! ECDF walk the server-latency column contiguously, and lets the db
//! stage scatter into the `d` column without touching `s` — while the
//! buffers themselves are reusable across sweep points via
//! [`crate::sim::SimScratch`].

/// Column-major per-key outcomes of one server: `s[i]` is key `i`'s
/// server latency, `d[i]` its database latency (`0` for cache hits).
///
/// # Examples
///
/// ```
/// use memlat_cluster::KeyColumns;
/// let mut cols = KeyColumns::new();
/// cols.push_server(2.0e-4);
/// cols.push_server(3.0e-4);
/// cols.set_db(1, 1.5e-3);
/// assert_eq!(cols.len(), 2);
/// assert_eq!(cols.get(1), (3.0e-4, 1.5e-3));
/// assert_eq!(cols.iter().filter(|&(_, d)| d > 0.0).count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KeyColumns {
    s: Vec<f32>,
    d: Vec<f32>,
    /// Delayed-hit flags, lazily allocated: stays empty (not
    /// `len()`-sized) until the coalescing relay marks the first delayed
    /// hit, so runs that never coalesce compare equal to columns
    /// produced before the lane existed.
    delayed: Vec<bool>,
}

impl KeyColumns {
    /// Creates empty columns.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.s.len()
    }

    /// Whether no keys were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.s.is_empty()
    }

    /// Clears the columns, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.s.clear();
        self.d.clear();
        self.delayed.clear();
    }

    /// Appends a key with server latency `s` and no db latency yet.
    #[inline]
    pub fn push_server(&mut self, s: f32) {
        self.s.push(s);
        self.d.push(0.0);
    }

    /// Appends a block of keys by server latency (`f64` lane narrowed to
    /// the `f32` columns), with no db latency yet — equivalent to calling
    /// [`KeyColumns::push_server`] per element.
    #[inline]
    pub fn extend_server(&mut self, s: &[f64]) {
        self.s.extend(s.iter().map(|&x| x as f32));
        self.d.resize(self.s.len(), 0.0);
    }

    /// The `(s, d)` pair of key `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> (f32, f32) {
        (self.s[i], self.d[i])
    }

    /// The server-latency column.
    #[must_use]
    pub fn s(&self) -> &[f32] {
        &self.s
    }

    /// The db-latency column.
    #[must_use]
    pub fn d(&self) -> &[f32] {
        &self.d
    }

    /// Mutable server-latency column (the hedging pass rewrites wins in
    /// place).
    pub fn s_mut(&mut self) -> &mut [f32] {
        &mut self.s
    }

    /// Sets key `i`'s db latency (the db stage scatters completions back
    /// by origin index).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    #[inline]
    pub fn set_db(&mut self, i: usize, d: f32) {
        self.d[i] = d;
    }

    /// Marks key `i` as a delayed hit (its db latency is the residual of
    /// an outstanding fetch rather than a dispatched trip). Allocates the
    /// flag lane on first use.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    #[inline]
    pub fn set_delayed(&mut self, i: usize) {
        assert!(i < self.s.len(), "key index {i} out of bounds");
        if self.delayed.len() < self.s.len() {
            self.delayed.resize(self.s.len(), false);
        }
        self.delayed[i] = true;
    }

    /// Whether key `i` resolved as a delayed hit. `false` everywhere on
    /// runs without coalescing.
    #[inline]
    #[must_use]
    pub fn is_delayed(&self, i: usize) -> bool {
        self.delayed.get(i).copied().unwrap_or(false)
    }

    /// Number of delayed hits recorded.
    #[must_use]
    pub fn delayed_count(&self) -> usize {
        self.delayed.iter().filter(|&&b| b).count()
    }

    /// Iterates `(s, d)` pairs in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (f32, f32)> + '_ {
        self.s.iter().zip(&self.d).map(|(&s, &d)| (s, d))
    }
}

impl<'a> IntoIterator for &'a KeyColumns {
    type Item = (f32, f32);
    type IntoIter = std::iter::Map<
        std::iter::Zip<std::slice::Iter<'a, f32>, std::slice::Iter<'a, f32>>,
        fn((&'a f32, &'a f32)) -> (f32, f32),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.s.iter().zip(self.d.iter()).map(|(&s, &d)| (s, d))
    }
}

#[cfg(test)]
impl KeyColumns {
    /// Test helper: columns with pre-reserved capacity.
    fn with_reserved(cap: usize) -> Self {
        Self {
            s: Vec::with_capacity(cap),
            d: Vec::with_capacity(cap),
            delayed: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_and_iterate() {
        let mut c = KeyColumns::new();
        assert!(c.is_empty());
        c.push_server(1.0);
        c.push_server(2.0);
        c.set_db(0, 5.0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), (1.0, 5.0));
        assert_eq!(c.get(1), (2.0, 0.0));
        assert_eq!(c.s(), &[1.0, 2.0]);
        assert_eq!(c.d(), &[5.0, 0.0]);
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs, vec![(1.0, 5.0), (2.0, 0.0)]);
        let by_ref: Vec<_> = (&c).into_iter().collect();
        assert_eq!(by_ref, pairs);
    }

    #[test]
    fn extend_server_matches_push_server() {
        let mut a = KeyColumns::new();
        let mut b = KeyColumns::new();
        let lane = [1.0e-4, 2.5e-4, 7.75e-3];
        a.extend_server(&lane);
        for &x in &lane {
            b.push_server(x as f32);
        }
        assert_eq!(a, b);
        a.set_db(1, 4.0);
        a.extend_server(&lane[..1]);
        assert_eq!(a.len(), 4);
        assert_eq!(a.get(3), (1.0e-4, 0.0));
        assert_eq!(a.get(1), (2.5e-4, 4.0));
    }

    #[test]
    fn clear_retains_capacity() {
        let mut c = KeyColumns::new();
        for i in 0..100 {
            c.push_server(i as f32);
        }
        let cap = c.s.capacity();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.s.capacity(), cap);
        c.push_server(9.0);
        assert_eq!(c.get(0), (9.0, 0.0));
    }

    #[test]
    fn delayed_lane_is_lazy() {
        let mut c = KeyColumns::new();
        c.push_server(1.0);
        c.push_server(2.0);
        // Untouched lane: equal to a never-coalescing peer, all false.
        let plain = c.clone();
        assert!(!c.is_delayed(0) && !c.is_delayed(1));
        assert_eq!(c.delayed_count(), 0);
        c.set_delayed(1);
        assert!(!c.is_delayed(0));
        assert!(c.is_delayed(1));
        assert_eq!(c.delayed_count(), 1);
        assert_ne!(c, plain);
        c.clear();
        assert_eq!(c.delayed_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_delayed_bounds_checked() {
        let mut c = KeyColumns::new();
        c.push_server(1.0);
        c.set_delayed(3);
    }

    #[test]
    fn equality_is_by_content() {
        let mut a = KeyColumns::new();
        let mut b = KeyColumns::with_reserved(64);
        a.push_server(3.0);
        b.push_server(3.0);
        assert_eq!(a, b);
        b.set_db(0, 1.0);
        assert_ne!(a, b);
    }
}
