//! Per-server miss state behind a trait: the paper's ideal fixed-ratio
//! coin flip, or a real slab/LRU store whose miss ratio *emerges* from
//! Zipf traffic against a finite memory budget.
//!
//! The trait boundary is what keeps the analytic mode fast and frozen:
//! [`MissState::fixed_ratio`] tells the server loop whether misses are
//! an i.i.d. coin flip — exactly the contract the block-batched hot path
//! needs — so [`FixedRatioMiss`] keeps its bit-exact RNG draw sequence
//! (goldens and FNV fingerprints must not move) while [`LruBackedMiss`]
//! is free to consult a store, sample value sizes, and (under
//! consistent-hash routing) draw from its server's conditional key
//! population.

use std::sync::Arc;

use memlat_cache::{Store, StoreConfig};
use memlat_dist::{GeneralizedPareto, ParamError};
use memlat_workload::{RoutedKeyspace, ZipfPopularity};
use rand::RngCore;

use crate::config::{CacheRouting, MissMode};
use crate::database::NO_KEY;

/// Per-server miss state: decides, for each served key, whether it
/// missed the cache.
///
/// Implementations must keep [`MissState::decide`]'s RNG consumption
/// well-defined per call — the cluster gives every server its own
/// seed-derived stream, so any deterministic consumption pattern
/// preserves 1-vs-N-thread bit-identity.
pub trait MissState {
    /// `Some(r)` when misses are an i.i.d. coin flip with ratio `r` —
    /// the block-batched hot path is only sound under that contract (it
    /// pre-banks one miss uniform per key). `None` for stateful
    /// deciders, which force the scalar path.
    fn fixed_ratio(&self) -> Option<f64>;

    /// Whether the key served at simulated time `now` misses, plus the
    /// sampled key identity ([`NO_KEY`] when the decider draws none).
    fn decide(&mut self, now: f64, rng: &mut dyn RngCore) -> (bool, u64);

    /// The backing store's own observed miss ratio, when one exists
    /// (warm-up traffic included — the store saw it).
    fn observed_miss_ratio(&self) -> Option<f64>;

    /// Items resident in the backing store (0 without one). For
    /// LRU-backed runs this is the steady-state cache size in *items* —
    /// the `x` of the Ji/Quan/Tan asymptotic.
    fn cached_items(&self) -> u64;
}

/// The paper's assumption: every key misses independently with ratio
/// `r`, no key identity, no state.
#[derive(Debug, Clone, Copy)]
pub struct FixedRatioMiss {
    ratio: f64,
}

impl FixedRatioMiss {
    /// A coin-flip decider with miss ratio `r`.
    #[must_use]
    pub fn new(ratio: f64) -> Self {
        Self { ratio }
    }
}

impl MissState for FixedRatioMiss {
    fn fixed_ratio(&self) -> Option<f64> {
        Some(self.ratio)
    }

    #[inline]
    fn decide(&mut self, _now: f64, rng: &mut dyn RngCore) -> (bool, u64) {
        // r ≤ 0 draws nothing: the zero-miss stream must stay bit-
        // identical to the historical output.
        if self.ratio <= 0.0 {
            (false, NO_KEY)
        } else {
            (memlat_dist::open_unit(rng) < self.ratio, NO_KEY)
        }
    }

    fn observed_miss_ratio(&self) -> Option<f64> {
        None
    }

    fn cached_items(&self) -> u64 {
        0
    }
}

/// The key population an LRU-backed server samples from.
enum Population {
    /// The full Zipf key space — every server sees a statistically
    /// identical independent stream (no routing).
    Full(Arc<ZipfPopularity>),
    /// This server's slice of the consistent-hash ring: keys are drawn
    /// from the conditional law `P(k) / p_j` over the keys it owns.
    Routed {
        keyspace: Arc<RoutedKeyspace>,
        server: usize,
    },
}

/// A real slab/LRU store behind the miss decision: every served key is
/// sampled from the population, looked up, and demand-filled on miss
/// with a value drawn from the Facebook size law.
pub struct LruBackedMiss {
    // Boxed: the slab store dwarfs the fixed-ratio variant.
    store: Box<Store>,
    population: Population,
    value_sizes: GeneralizedPareto,
}

impl MissState for LruBackedMiss {
    fn fixed_ratio(&self) -> Option<f64> {
        None
    }

    fn decide(&mut self, now: f64, rng: &mut dyn RngCore) -> (bool, u64) {
        let mut r = &mut *rng;
        let key = match &self.population {
            Population::Full(pop) => pop.sample_key(&mut r),
            Population::Routed { keyspace, server } => keyspace.sample_key(*server, &mut r),
        };
        if self.store.get(key, now).is_hit() {
            (false, key)
        } else {
            // Demand fill: the value fetched from the database is cached
            // (items larger than the biggest chunk are simply not
            // cached, like memcached).
            let size = self.value_sizes.sample_with(rng).max(1.0) as usize;
            let _ = self.store.set(key, size, None, now);
            (true, key)
        }
    }

    fn observed_miss_ratio(&self) -> Option<f64> {
        Some(self.store.stats().miss_ratio())
    }

    fn cached_items(&self) -> u64 {
        self.store.len() as u64
    }
}

/// One server's slice of a cluster-built consistent-hash routing table:
/// the shared [`RoutedKeyspace`] plus this server's ring position.
#[derive(Debug, Clone)]
pub struct RoutedHandle {
    /// The ring-conditioned key populations, shared across servers.
    pub keyspace: Arc<RoutedKeyspace>,
    /// This server's index on the ring.
    pub server: usize,
}

/// Builds the miss state a server runs with.
///
/// The prebuilt handles exist so the O(keyspace) table builds happen
/// once per cluster configuration, not once per server per sweep point:
/// `popularity` for the unrouted population, `routed` for the
/// ring-conditioned one. Either handle must agree with the mode's own
/// config — the [`crate::config::CacheBackedConfig`] is the single
/// source of truth, and a mismatched handle is a hard error, not a
/// silent reinterpretation.
///
/// # Errors
///
/// Returns [`ParamError`] when the mode's parameters are invalid, when a
/// prebuilt handle disagrees with the config, or when
/// [`CacheRouting::ConsistentHash`] is requested without a routed handle
/// (the ring spans servers, so only the cluster layer can build it).
pub fn build_miss_state(
    mode: &MissMode,
    miss_ratio: f64,
    popularity: Option<&Arc<ZipfPopularity>>,
    routed: Option<&RoutedHandle>,
) -> Result<Box<dyn MissState>, ParamError> {
    match mode {
        MissMode::FixedRatio => Ok(Box::new(FixedRatioMiss::new(miss_ratio))),
        MissMode::CacheBacked(cfg) => {
            let population = match cfg.routing {
                CacheRouting::Independent => {
                    let pop = match popularity {
                        Some(p) => {
                            if p.keys() != cfg.keyspace || p.skew().to_bits() != cfg.skew.to_bits()
                            {
                                return Err(ParamError::new(format!(
                                    "prebuilt popularity ({} keys, skew {}) disagrees with the \
                                     cache config ({} keys, skew {})",
                                    p.keys(),
                                    p.skew(),
                                    cfg.keyspace,
                                    cfg.skew
                                )));
                            }
                            Arc::clone(p)
                        }
                        None => Arc::new(ZipfPopularity::new(cfg.keyspace, cfg.skew)?),
                    };
                    Population::Full(pop)
                }
                CacheRouting::ConsistentHash { vnodes } => {
                    let h = routed.ok_or_else(|| {
                        ParamError::new(
                            "consistent-hash routing needs the cluster-built ring \
                             (run through ClusterSim, which owns the server set)",
                        )
                    })?;
                    let ks = &h.keyspace;
                    if ks.keys() != cfg.keyspace
                        || ks.skew().to_bits() != cfg.skew.to_bits()
                        || ks.vnodes() != vnodes
                    {
                        return Err(ParamError::new(format!(
                            "routed keyspace ({} keys, skew {}, {} vnodes) disagrees with the \
                             cache config ({} keys, skew {}, {} vnodes)",
                            ks.keys(),
                            ks.skew(),
                            ks.vnodes(),
                            cfg.keyspace,
                            cfg.skew,
                            vnodes
                        )));
                    }
                    if h.server >= ks.servers() {
                        return Err(ParamError::new(format!(
                            "routed server index {} out of range ({} servers on the ring)",
                            h.server,
                            ks.servers()
                        )));
                    }
                    Population::Routed {
                        keyspace: Arc::clone(&h.keyspace),
                        server: h.server,
                    }
                }
            };
            Ok(Box::new(LruBackedMiss {
                store: Box::new(
                    Store::new(StoreConfig::with_memory(cfg.memory_bytes))
                        .map_err(|e| ParamError::new(e.to_string()))?,
                ),
                population,
                value_sizes: GeneralizedPareto::with_mean(0.35, cfg.mean_value_bytes)?,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheBackedConfig;
    use rand::SeedableRng;

    fn cache_cfg() -> CacheBackedConfig {
        CacheBackedConfig {
            memory_bytes: 4 << 20,
            keyspace: 50_000,
            skew: 1.1,
            mean_value_bytes: 300.0,
            routing: CacheRouting::Independent,
        }
    }

    #[test]
    fn fixed_ratio_contract() {
        let mut s = FixedRatioMiss::new(0.25);
        assert_eq!(s.fixed_ratio(), Some(0.25));
        assert_eq!(s.observed_miss_ratio(), None);
        assert_eq!(s.cached_items(), 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut misses = 0;
        for _ in 0..10_000 {
            let (m, k) = s.decide(0.0, &mut rng);
            assert_eq!(k, NO_KEY);
            misses += u64::from(m);
        }
        let frac = misses as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "{frac}");
    }

    #[test]
    fn zero_ratio_draws_nothing() {
        use rand::RngCore;
        let mut s = FixedRatioMiss::new(0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let before = rng.clone().next_u64();
        assert_eq!(s.decide(0.0, &mut rng), (false, NO_KEY));
        assert_eq!(rng.next_u64(), before, "zero-ratio decide consumed RNG");
    }

    #[test]
    fn lru_backed_reports_store_state() {
        let mode = MissMode::CacheBacked(cache_cfg());
        let mut s = build_miss_state(&mode, 0.0, None, None).unwrap();
        assert_eq!(s.fixed_ratio(), None);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for i in 0..20_000 {
            let now = i as f64 * 1e-5;
            let (_, key) = s.decide(now, &mut rng);
            assert!(key < 50_000);
        }
        let r = s.observed_miss_ratio().unwrap();
        assert!(r > 0.0 && r < 1.0, "{r}");
        assert!(s.cached_items() > 0);
    }

    #[test]
    fn prebuilt_popularity_mismatch_is_a_hard_error() {
        let mode = MissMode::CacheBacked(cache_cfg());
        let wrong_keys = Arc::new(ZipfPopularity::new(10_000, 1.1).unwrap());
        assert!(build_miss_state(&mode, 0.0, Some(&wrong_keys), None).is_err());
        let wrong_skew = Arc::new(ZipfPopularity::new(50_000, 0.9).unwrap());
        assert!(build_miss_state(&mode, 0.0, Some(&wrong_skew), None).is_err());
        let right = Arc::new(ZipfPopularity::new(50_000, 1.1).unwrap());
        assert!(build_miss_state(&mode, 0.0, Some(&right), None).is_ok());
    }

    #[test]
    fn routed_mode_requires_a_matching_handle() {
        let mut cfg = cache_cfg();
        cfg.routing = CacheRouting::ConsistentHash { vnodes: 32 };
        let mode = MissMode::CacheBacked(cfg);
        // No handle: only the cluster can build the ring.
        assert!(build_miss_state(&mode, 0.0, None, None).is_err());
        let pop = ZipfPopularity::new(50_000, 1.1).unwrap();
        let ks = Arc::new(RoutedKeyspace::new(&pop, 4, 32).unwrap());
        let good = RoutedHandle {
            keyspace: Arc::clone(&ks),
            server: 2,
        };
        assert!(build_miss_state(&mode, 0.0, None, Some(&good)).is_ok());
        // Wrong vnode count, wrong server index: hard errors.
        let wrong_ring = Arc::new(RoutedKeyspace::new(&pop, 4, 16).unwrap());
        let bad_vnodes = RoutedHandle {
            keyspace: wrong_ring,
            server: 0,
        };
        assert!(build_miss_state(&mode, 0.0, None, Some(&bad_vnodes)).is_err());
        let bad_server = RoutedHandle {
            keyspace: ks,
            server: 4,
        };
        assert!(build_miss_state(&mode, 0.0, None, Some(&bad_server)).is_err());
    }

    #[test]
    fn routed_decide_stays_in_the_owned_slice() {
        let mut cfg = cache_cfg();
        cfg.routing = CacheRouting::ConsistentHash { vnodes: 64 };
        let mode = MissMode::CacheBacked(cfg);
        let pop = ZipfPopularity::new(50_000, 1.1).unwrap();
        let ks = Arc::new(RoutedKeyspace::new(&pop, 3, 64).unwrap());
        let mut s = build_miss_state(
            &mode,
            0.0,
            None,
            Some(&RoutedHandle {
                keyspace: Arc::clone(&ks),
                server: 1,
            }),
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for i in 0..2_000 {
            let (_, key) = s.decide(i as f64 * 1e-5, &mut rng);
            assert_eq!(ks.server_of(key), 1, "foreign key {key}");
        }
    }
}
