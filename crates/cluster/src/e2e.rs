//! End-to-end mode: explicit request fan-out.
//!
//! The analytical model (and the assembly path) assumes per-key
//! independence: the keys of one request sample latencies independently
//! (paper eq. 10). In a real deployment, the keys of one request arrive
//! at their servers *simultaneously*, so keys landing on the same server
//! queue behind each other — positive correlation the model ignores.
//!
//! This module simulates that real process: requests arrive as a Poisson
//! stream, each fans out `N` keys multinomially, keys reach servers after
//! half the network latency, are served FCFS, missed keys visit the
//! database, and the request completes at its slowest key. Comparing
//! against [`crate::assembly`] quantifies the independence assumption's
//! error — an extension experiment of this reproduction.

use memlat_des::rng::stream_rng;
use memlat_dist::{multinomial_counts, Exponential};
use memlat_stats::{ConfidenceInterval, StreamingStats};

use crate::{
    database::{run_db_stage, MissArrival},
    SimError,
};
use memlat_des::fcfs::FcfsStation;
use memlat_model::ModelParams;

/// Configuration of an end-to-end run.
#[derive(Debug, Clone, PartialEq)]
pub struct E2eConfig {
    /// The system parameters (request rate derives from
    /// `total_key_rate / keys_per_request`).
    pub params: ModelParams,
    /// Number of requests to simulate (after warm-up).
    pub requests: usize,
    /// Requests discarded as warm-up.
    pub warmup_requests: usize,
    /// Master seed.
    pub seed: u64,
    /// Database shards (0 = auto, like [`crate::SimConfig`]).
    pub db_shards: usize,
}

impl E2eConfig {
    /// A default end-to-end configuration.
    #[must_use]
    pub fn new(params: ModelParams) -> Self {
        Self {
            params,
            requests: 20_000,
            warmup_requests: 2_000,
            seed: 0xe2e,
            db_shards: 0,
        }
    }

    /// Sets the measured request count.
    #[must_use]
    pub fn requests(mut self, n: usize) -> Self {
        self.requests = n;
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Results of an end-to-end run.
#[derive(Debug, Clone, PartialEq)]
pub struct E2eOutput {
    /// Mean / CI of the true end-user latency.
    pub total: ConfidenceInterval,
    /// Mean / CI of `max_i s_i` per request.
    pub ts: ConfidenceInterval,
    /// Mean / CI of `max_i d_i` per request.
    pub td: ConfidenceInterval,
    /// Observed per-server utilization.
    pub utilization: Vec<f64>,
    /// Observed miss ratio.
    pub miss_ratio: f64,
}

/// Runs the end-to-end simulation.
///
/// # Errors
///
/// Propagates model errors (shares, instability) and configuration
/// problems.
pub fn run_e2e(cfg: &E2eConfig) -> Result<E2eOutput, SimError> {
    let params = &cfg.params;
    let n = params.keys_per_request();
    let shares = params.load().shares(params.servers())?;
    let request_rate = params.total_key_rate() / n as f64;
    let gaps =
        Exponential::new(request_rate).map_err(|e| SimError::InvalidConfig(e.to_string()))?;

    let mut rng = stream_rng(cfg.seed, 42);
    let mut stations: Vec<FcfsStation> =
        (0..params.servers()).map(|_| FcfsStation::new()).collect();

    let total_requests = cfg.warmup_requests + cfg.requests;
    // Per-request bookkeeping: (server_max_completion - arrival) etc.
    struct Pending {
        arrival: f64,
        worst_s: f64,
        worst_total_completion: f64,
        worst_d: f64,
        outstanding_db: u32,
        measured: bool,
    }
    let mut pending: Vec<Pending> = Vec::with_capacity(total_requests);
    let mut misses: Vec<MissArrival> = Vec::new();
    let mut clock = 0.0f64;
    let mut total_keys = 0u64;
    use memlat_dist::Continuous;
    let half_net = params.network_latency() / 2.0;

    for req_idx in 0..total_requests {
        clock += gaps.sample(&mut rng);
        let counts = multinomial_counts(n, &shares, &mut rng).expect("validated shares");
        let mut p = Pending {
            arrival: clock,
            worst_s: 0.0,
            worst_total_completion: clock,
            worst_d: 0.0,
            outstanding_db: 0,
            measured: req_idx >= cfg.warmup_requests,
        };
        for (j, &c) in counts.iter().enumerate() {
            // Keys of one request reach their server together (a batch).
            let key_arrival = clock + half_net;
            for _ in 0..c {
                total_keys += 1;
                let svc = -memlat_dist::simd::dln(memlat_dist::open_unit(&mut rng))
                    / params.service_rate();
                let done = stations[j].submit(key_arrival, svc);
                let s = done.sojourn();
                p.worst_s = p.worst_s.max(s);
                let missed = params.miss_ratio() > 0.0
                    && memlat_dist::open_unit(&mut rng) < params.miss_ratio();
                if missed {
                    p.outstanding_db += 1;
                    misses.push(MissArrival {
                        time: done.departure,
                        origin: (req_idx as u32, 0),
                        key: crate::database::NO_KEY,
                    });
                } else {
                    p.worst_total_completion = p.worst_total_completion.max(done.departure);
                }
            }
        }
        pending.push(p);
    }

    // Database stage over the merged miss stream.
    misses.sort_by(|a, b| a.time.total_cmp(&b.time));
    let shards = if cfg.db_shards > 0 {
        cfg.db_shards
    } else {
        let miss_rate = params.total_key_rate() * params.miss_ratio();
        ((miss_rate / (0.05 * params.db_service_rate())).ceil() as usize).max(1)
    };
    let mut db_rng = stream_rng(cfg.seed, 43);
    let completed = run_db_stage(&misses, shards, params.db_service_rate(), &mut db_rng);
    for (i, ((req, _), d)) in completed.iter().enumerate() {
        let p = &mut pending[*req as usize];
        p.worst_d = p.worst_d.max(*d);
        // Key completion at db = miss time + d.
        let db_completion = misses[i].time + d;
        p.worst_total_completion = p.worst_total_completion.max(db_completion);
        p.outstanding_db -= 1;
    }

    let mut total = StreamingStats::new();
    let mut ts = StreamingStats::new();
    let mut td = StreamingStats::new();
    let mut total_misses = 0u64;
    for p in &pending {
        debug_assert_eq!(p.outstanding_db, 0);
        if !p.measured {
            continue;
        }
        // The response still crosses the network back: + half_net.
        total.push(p.worst_total_completion - p.arrival + half_net);
        ts.push(p.worst_s);
        td.push(p.worst_d);
        if p.worst_d > 0.0 {
            total_misses += 1; // requests with ≥1 miss (reported below as ratio over keys)
        }
    }
    let _ = total_misses;

    let horizon = clock;
    let utilization: Vec<f64> = stations
        .iter()
        .map(|s| s.utilization(horizon).min(1.0))
        .collect();

    Ok(E2eOutput {
        total: ConfidenceInterval::for_mean(&total, 0.95),
        ts: ConfidenceInterval::for_mean(&ts, 0.95),
        td: ConfidenceInterval::for_mean(&td, 0.95),
        utilization,
        miss_ratio: misses.len() as f64 / total_keys as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ModelParams {
        ModelParams::builder().build().unwrap()
    }

    #[test]
    fn e2e_reproduces_table3_scale() {
        let cfg = E2eConfig::new(base()).requests(8_000).seed(1);
        let out = run_e2e(&cfg).unwrap();
        // Utilization ≈ 78%, miss ratio ≈ 1%.
        for &u in &out.utilization {
            assert!((u - 0.78).abs() < 0.08, "{u}");
        }
        assert!((out.miss_ratio - 0.01).abs() < 0.004, "{}", out.miss_ratio);
        // Latency in the same regime as the paper's 1144 µs measurement.
        assert!(
            out.total.mean > 500e-6 && out.total.mean < 3e-3,
            "{}",
            out.total.mean
        );
        // Components below the total.
        assert!(out.ts.mean < out.total.mean);
        assert!(out.td.mean < out.total.mean);
    }

    #[test]
    fn e2e_latency_grows_with_load() {
        let slow = {
            let p = ModelParams::builder()
                .key_rate_per_server(30_000.0)
                .build()
                .unwrap();
            run_e2e(&E2eConfig::new(p).requests(4_000).seed(2)).unwrap()
        };
        let fast = {
            let p = ModelParams::builder()
                .key_rate_per_server(70_000.0)
                .build()
                .unwrap();
            run_e2e(&E2eConfig::new(p).requests(4_000).seed(2)).unwrap()
        };
        assert!(fast.ts.mean > slow.ts.mean);
    }

    #[test]
    fn e2e_zero_misses_zero_td() {
        let p = base().with_miss_ratio(0.0).unwrap();
        let out = run_e2e(&E2eConfig::new(p).requests(2_000).seed(3)).unwrap();
        assert_eq!(out.td.mean, 0.0);
        assert_eq!(out.miss_ratio, 0.0);
    }

    #[test]
    fn e2e_is_deterministic_per_seed() {
        let a = run_e2e(&E2eConfig::new(base()).requests(1_500).seed(17)).unwrap();
        let b = run_e2e(&E2eConfig::new(base()).requests(1_500).seed(17)).unwrap();
        assert_eq!(a, b);
        let c = run_e2e(&E2eConfig::new(base()).requests(1_500).seed(18)).unwrap();
        assert_ne!(a.total.mean, c.total.mean);
    }

    #[test]
    fn e2e_network_latency_is_additive() {
        // Doubling the constant network latency moves the mean by exactly
        // the extra constant (same seed ⇒ same queueing sample path).
        let base_p = base();
        let slow = ModelParams::builder()
            .network_latency(220e-6)
            .build()
            .unwrap();
        let a = run_e2e(&E2eConfig::new(base_p).requests(1_500).seed(19)).unwrap();
        let b = run_e2e(&E2eConfig::new(slow).requests(1_500).seed(19)).unwrap();
        assert!(((b.total.mean - a.total.mean) - 200e-6).abs() < 1e-9);
    }

    #[test]
    fn e2e_respects_explicit_db_shards() {
        // One overloaded shard (vs auto ≈50) inflates the db component.
        let mut cfg = E2eConfig::new(base()).requests(4_000).seed(20);
        cfg.db_shards = 200;
        let plenty = run_e2e(&cfg).unwrap();
        let mut cfg_one = E2eConfig::new(base()).requests(4_000).seed(20);
        cfg_one.db_shards = 3; // miss rate ≈2.5 K/s vs capacity 3 K/s: ρ≈0.83
        let scarce = run_e2e(&cfg_one).unwrap();
        assert!(
            scarce.td.mean > 1.5 * plenty.td.mean,
            "{} vs {}",
            scarce.td.mean,
            plenty.td.mean
        );
    }
}
