//! Request assembly: from per-key samples to end-user request latency.
//!
//! The paper's testbed measures per-key traffic and treats an end-user
//! request as a logical group of `N` keys split multinomially over the
//! servers (§4.3.2); the request completes when its slowest key does.
//! This module performs that assembly over the simulator's per-key
//! records: for each synthetic request, draw per-server key counts
//! `Multinomial(N, {p_j})`, sample that many `(s, d)` outcomes from each
//! server's recorded population, and take the maxima.
//!
//! Sampling per-key outcomes independently matches the model's
//! independence assumption (eq. 10); the [`crate::e2e`] mode exists to
//! measure what that assumption costs.

use memlat_dist::multinomial_counts;
use memlat_stats::{ConfidenceInterval, StreamingStats};
use rand::RngCore;

use crate::sim::SimOutput;

/// One assembled end-user request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestSample {
    /// End-user latency `T(N) = T_net + max_i(s_i + d_i)`.
    pub total: f64,
    /// `T_S(N) = max_i s_i`.
    pub ts_max: f64,
    /// `T_D(N) = max_i d_i` (0 when no key missed).
    pub td_max: f64,
}

/// Aggregated request statistics (means with 95% confidence intervals —
/// the quantities of the paper's Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestStats {
    /// Mean and CI of the end-user latency `T(N)`.
    pub total: ConfidenceInterval,
    /// Mean and CI of `T_S(N)`.
    pub ts: ConfidenceInterval,
    /// Mean and CI of `T_D(N)`.
    pub td: ConfidenceInterval,
    /// The constant network latency `T_N(N)`.
    pub network: f64,
    /// Number of assembled requests.
    pub requests: usize,
}

impl std::fmt::Display for RequestStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "T_N(N) = {:>9.1} µs (constant)", self.network * 1e6)?;
        writeln!(
            f,
            "T_S(N) = {:>9.1} µs  CI [{:.1}, {:.1}] µs",
            self.ts.mean * 1e6,
            self.ts.lower * 1e6,
            self.ts.upper * 1e6
        )?;
        writeln!(
            f,
            "T_D(N) = {:>9.1} µs  CI [{:.1}, {:.1}] µs",
            self.td.mean * 1e6,
            self.td.lower * 1e6,
            self.td.upper * 1e6
        )?;
        write!(
            f,
            "T(N)   = {:>9.1} µs  CI [{:.1}, {:.1}] µs  ({} requests)",
            self.total.mean * 1e6,
            self.total.lower * 1e6,
            self.total.upper * 1e6,
            self.requests
        )
    }
}

/// Assembles `requests` synthetic end-user requests of `n` keys each
/// from a simulation's per-key records.
///
/// # Panics
///
/// Panics if a loaded server recorded no keys (run longer) or `n == 0`.
pub fn assemble_requests(
    out: &SimOutput,
    n: u64,
    requests: usize,
    rng: &mut dyn RngCore,
) -> RequestStats {
    assert!(n > 0, "requests need at least one key");
    let shares = out.shares().to_vec();
    let mut total = StreamingStats::new();
    let mut ts = StreamingStats::new();
    let mut td = StreamingStats::new();

    for _ in 0..requests {
        let counts = multinomial_counts(n, &shares, rng).expect("validated shares");
        let mut worst_total = 0.0f64;
        let mut worst_s = 0.0f64;
        let mut worst_d = 0.0f64;
        for (j, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let recs = out.records(j);
            assert!(
                !recs.is_empty(),
                "server {j} has load share {} but recorded no keys",
                shares[j]
            );
            for _ in 0..c {
                let idx = (rng.next_u64() % recs.len() as u64) as usize;
                let (s, d) = recs.get(idx);
                let (s, d) = (f64::from(s), f64::from(d));
                worst_s = worst_s.max(s);
                worst_d = worst_d.max(d);
                worst_total = worst_total.max(s + d);
            }
        }
        total.push(out.network_latency() + worst_total);
        ts.push(worst_s);
        td.push(worst_d);
    }

    RequestStats {
        total: ConfidenceInterval::for_mean(&total, 0.95),
        ts: ConfidenceInterval::for_mean(&ts, 0.95),
        td: ConfidenceInterval::for_mean(&td, 0.95),
        network: out.network_latency(),
        requests,
    }
}

/// Assembles requests under **key replication**: each key is dispatched
/// to `replicas` distinct servers and completes when the *fastest*
/// replica does (the "low latency via redundancy" design the paper cites
/// as related work \[12\]).
///
/// The caller is responsible for simulating the *replicated* load level
/// (replication multiplies every server's key rate by `replicas`); this
/// function only performs the min-of-replicas draw, so the
/// cost-vs-benefit trade-off is visible: redundancy cuts the per-key
/// tail but pushes servers toward the latency cliff.
///
/// # Panics
///
/// Panics if `replicas` is 0 or exceeds the number of loaded servers,
/// or if a loaded server has no records.
pub fn assemble_requests_replicated(
    out: &SimOutput,
    n: u64,
    requests: usize,
    replicas: usize,
    rng: &mut dyn RngCore,
) -> RequestStats {
    assert!(n > 0, "requests need at least one key");
    let shares = out.shares().to_vec();
    let loaded: Vec<usize> = (0..shares.len())
        .filter(|&j| shares[j] > 0.0 && !out.records(j).is_empty())
        .collect();
    assert!(
        (1..=loaded.len()).contains(&replicas),
        "replicas must be in 1..={}, got {replicas}",
        loaded.len()
    );
    let mut total = StreamingStats::new();
    let mut ts = StreamingStats::new();
    let mut td = StreamingStats::new();

    for _ in 0..requests {
        let mut worst_total = 0.0f64;
        let mut worst_s = 0.0f64;
        let mut worst_d = 0.0f64;
        for _ in 0..n {
            // Pick `replicas` distinct servers uniformly among the loaded
            // ones (replica placement ignores popularity by design).
            let mut chosen: Vec<usize> = Vec::with_capacity(replicas);
            while chosen.len() < replicas {
                let j = loaded[(rng.next_u64() % loaded.len() as u64) as usize];
                if !chosen.contains(&j) {
                    chosen.push(j);
                }
            }
            let mut best_total = f64::INFINITY;
            let mut best_s = f64::INFINITY;
            let mut best_d = f64::INFINITY;
            for j in chosen {
                let recs = out.records(j);
                let (s, d) = recs.get((rng.next_u64() % recs.len() as u64) as usize);
                let (s, d) = (f64::from(s), f64::from(d));
                if s + d < best_total {
                    best_total = s + d;
                    best_s = s;
                    best_d = d;
                }
            }
            worst_total = worst_total.max(best_total);
            worst_s = worst_s.max(best_s);
            worst_d = worst_d.max(best_d);
        }
        total.push(out.network_latency() + worst_total);
        ts.push(worst_s);
        td.push(worst_d);
    }

    RequestStats {
        total: ConfidenceInterval::for_mean(&total, 0.95),
        ts: ConfidenceInterval::for_mean(&ts, 0.95),
        td: ConfidenceInterval::for_mean(&td, 0.95),
        network: out.network_latency(),
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterSim, SimConfig};
    use memlat_model::ModelParams;
    use rand::SeedableRng;

    fn sim() -> SimOutput {
        let params = ModelParams::builder().build().unwrap();
        ClusterSim::run(&SimConfig::new(params).duration(1.0).warmup(0.1).seed(11)).unwrap()
    }

    #[test]
    fn table3_breakdown_reproduced() {
        // Paper Table 3 measurements: T_S(N) = 368 µs, T_D(N) = 867 µs,
        // T(N) = 1144 µs. Our simulator should land near those (it
        // realizes the same generative process).
        let out = sim();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let stats = assemble_requests(&out, 150, 40_000, &mut rng);
        assert!(
            (stats.ts.mean * 1e6 - 368.0).abs() < 60.0,
            "T_S(N) = {} µs vs paper 368 µs",
            stats.ts.mean * 1e6
        );
        // T_D(N): the within-model exact value is ~1084 µs (eq. 23's
        // approximation is 836 µs and the paper measured 867 µs — see
        // EXPERIMENTS.md on the eq. 23 bias).
        let exact_td = memlat_model::database::db_latency_mean_exact(150, 0.01, 1_000.0);
        assert!(
            (stats.td.mean / exact_td - 1.0).abs() < 0.12,
            "T_D(N) = {} µs vs exact-in-model {} µs",
            stats.td.mean * 1e6,
            exact_td * 1e6
        );
        // T(N): between Theorem 1's lower bound and the exact-enhanced
        // upper bound (network + T_S upper + exact T_D).
        let est = ModelParams::builder().build().unwrap().estimate().unwrap();
        let upper = est.network + est.server.upper + est.database_exact;
        assert!(
            stats.total.mean > est.total.lower * 0.9 && stats.total.mean < upper * 1.1,
            "T(N) = {} µs outside [{}, {}] µs",
            stats.total.mean * 1e6,
            est.total.lower * 0.9e6,
            upper * 1.1e6
        );
    }

    #[test]
    fn component_maxima_are_ordered() {
        let out = sim();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let stats = assemble_requests(&out, 50, 5_000, &mut rng);
        // total ≥ network + max(s) and total ≥ network + max(d) in means.
        assert!(stats.total.mean >= stats.ts.mean);
        assert!(stats.total.mean >= stats.td.mean);
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    fn more_keys_means_more_latency() {
        let out = sim();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let small = assemble_requests(&out, 10, 5_000, &mut rng);
        let big = assemble_requests(&out, 1_000, 5_000, &mut rng);
        assert!(big.ts.mean > small.ts.mean);
        assert!(big.total.mean > small.total.mean);
    }

    #[test]
    fn replication_at_fixed_load_cuts_latency() {
        // At the SAME traffic level, min-of-2 replicas beats 1 replica —
        // the pure benefit side of the redundancy trade-off.
        let out = sim();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let r1 = assemble_requests_replicated(&out, 150, 5_000, 1, &mut rng);
        let r2 = assemble_requests_replicated(&out, 150, 5_000, 2, &mut rng);
        assert!(r2.ts.mean < r1.ts.mean, "{} !< {}", r2.ts.mean, r1.ts.mean);
        assert!(r2.total.mean < r1.total.mean);
    }

    #[test]
    fn replication_of_one_matches_plain_assembly_roughly() {
        let out = sim();
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(9);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(9);
        let plain = assemble_requests(&out, 150, 10_000, &mut rng1);
        let rep1 = assemble_requests_replicated(&out, 150, 10_000, 1, &mut rng2);
        // Replica placement is uniform rather than share-weighted; under
        // balanced load both estimates coincide statistically.
        assert!((plain.ts.mean / rep1.ts.mean - 1.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "replicas must be in")]
    fn replication_bounds_checked() {
        let out = sim();
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let _ = assemble_requests_replicated(&out, 10, 10, 5, &mut rng);
    }

    #[test]
    fn single_key_request_matches_per_key_mean() {
        let out = sim();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let stats = assemble_requests(&out, 1, 20_000, &mut rng);
        let pooled_mean = out.server_latency_ecdf().mean();
        // For N=1, E[T_S(1)] is just the per-key mean.
        assert!(
            (stats.ts.mean / pooled_mean - 1.0).abs() < 0.1,
            "{} vs {}",
            stats.ts.mean,
            pooled_mean
        );
    }
}
