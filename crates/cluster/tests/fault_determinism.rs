//! Cross-thread determinism of *faulty* runs.
//!
//! PR 1 established that healthy runs are bit-identical across thread
//! counts. The fault subsystem adds new random draws (backoff jitter,
//! hedge replica sampling) and new merge-step work (the hedging min
//! pass); this test extends the invariant to runs with crashes,
//! slowdowns, retries, timeouts, and hedging all active at once:
//! threads = 1, 4, and 64 must agree byte-for-byte, down to a rendered
//! CSV of every observable.

use memlat_cluster::{ClientPolicy, ClusterSim, FaultPlan, RetryPolicy, SimConfig, SimOutput};
use memlat_model::ModelParams;
use std::fmt::Write as _;

fn faulty_config() -> SimConfig {
    let params = ModelParams::builder().build().unwrap();
    SimConfig::new(params)
        .duration(0.4)
        .warmup(0.1)
        .seed(0xfa07)
        .fault_plan(
            FaultPlan::none()
                .crash(1, 0.15, 0.25)
                .slowdown(2, 0.2, 0.4, 4.0)
                .crash(3, 0.3, 0.35),
        )
        .client(
            ClientPolicy::none()
                .timeout(3e-3)
                .retry(RetryPolicy {
                    max_retries: 3,
                    base_backoff: 500e-6,
                    multiplier: 2.0,
                    jitter: 0.25,
                })
                .hedge(1e-3),
        )
}

/// Renders every observable of a run into one CSV string, bit-exact
/// (floats via their raw bit patterns, so formatting cannot hide a
/// divergence).
fn render_csv(out: &SimOutput) -> String {
    let mut csv = String::new();
    csv.push_str("section,server,field,value\n");
    let total = out.resilience();
    let _ = writeln!(csv, "cluster,,total_keys,{}", out.total_keys());
    let _ = writeln!(
        csv,
        "cluster,,miss_ratio,{:016x}",
        out.miss_ratio().to_bits()
    );
    let _ = writeln!(
        csv,
        "cluster,,forced_miss_ratio,{:016x}",
        out.forced_miss_ratio().to_bits()
    );
    for (name, v) in [
        ("timeouts", total.timeouts),
        ("refused", total.refused),
        ("retries", total.retries),
        ("forced_misses", total.forced_misses),
        ("hedges_sent", total.hedges_sent),
        ("hedges_won", total.hedges_won),
    ] {
        let _ = writeln!(csv, "cluster,,{name},{v}");
    }
    let _ = writeln!(csv, "cluster,,downtime,{:016x}", total.downtime.to_bits());
    let _ = writeln!(
        csv,
        "cluster,,degraded_time,{:016x}",
        total.degraded_time.to_bits()
    );
    for (j, s) in out.summaries().iter().enumerate() {
        let _ = writeln!(csv, "server,{j},jobs,{}", s.counters.jobs);
        let _ = writeln!(csv, "server,{j},misses,{}", s.counters.misses);
        let _ = writeln!(
            csv,
            "server,{j},latency_mean,{:016x}",
            s.latency.mean().to_bits()
        );
        let _ = writeln!(
            csv,
            "server,{j},degraded_count,{}",
            s.degraded_latency.count()
        );
        let _ = writeln!(
            csv,
            "server,{j},healthy_count,{}",
            s.healthy_latency.count()
        );
        let _ = writeln!(
            csv,
            "server,{j},utilization,{:016x}",
            s.utilization.to_bits()
        );
        let _ = writeln!(csv, "server,{j},timeouts,{}", s.resilience.timeouts);
        let _ = writeln!(csv, "server,{j},refused,{}", s.resilience.refused);
        let _ = writeln!(csv, "server,{j},retries,{}", s.resilience.retries);
        let _ = writeln!(
            csv,
            "server,{j},forced_misses,{}",
            s.resilience.forced_misses
        );
        let _ = writeln!(csv, "server,{j},hedges_sent,{}", s.resilience.hedges_sent);
        let _ = writeln!(csv, "server,{j},hedges_won,{}", s.resilience.hedges_won);
    }
    let _ = writeln!(
        csv,
        "db,,latency_mean,{:016x}",
        out.db_latency_stats().mean().to_bits()
    );
    let _ = writeln!(csv, "db,,count,{}", out.db_latency_stats().count());
    for p in [0.5, 0.9, 0.99] {
        let _ = writeln!(
            csv,
            "quantile,,p{},{:016x}",
            (p * 100.0) as u32,
            out.server_latency_quantile(p).to_bits()
        );
    }
    csv
}

#[test]
fn faulty_run_is_bit_identical_across_thread_counts() {
    let base = faulty_config();
    let seq = ClusterSim::run(&base.clone().threads(1)).unwrap();

    // The scenario actually exercises every mechanism.
    let total = seq.resilience();
    assert!(total.refused > 0, "no refusals — crash windows inert");
    assert!(total.timeouts > 0, "no timeouts — slowdown windows inert");
    assert!(total.retries > 0, "no retries issued");
    assert!(total.forced_misses > 0, "no forced misses");
    assert!(
        total.hedges_sent > 0 && total.hedges_won > 0,
        "hedging inert"
    );

    let seq_csv = render_csv(&seq);
    for threads in [4, 64] {
        let par = ClusterSim::run(&base.clone().threads(threads)).unwrap();
        // Raw per-key records: every pair identical, every server.
        assert_eq!(seq.total_keys(), par.total_keys());
        for j in 0..seq.shares().len() {
            assert_eq!(
                seq.records(j),
                par.records(j),
                "server {j} records differ at {threads} threads"
            );
        }
        // Streaming summaries bit-identical, resilience included.
        assert_eq!(seq.summaries(), par.summaries());
        assert_eq!(seq.db_latency_stats(), par.db_latency_stats());
        assert_eq!(seq.db_latency_sketch(), par.db_latency_sketch());
        // And the rendered CSV agrees byte-for-byte.
        assert_eq!(
            seq_csv,
            render_csv(&par),
            "CSV output diverges at {threads} threads"
        );
    }
}

#[test]
fn faulty_run_is_reproducible_per_seed() {
    let a = ClusterSim::run(&faulty_config()).unwrap();
    let b = ClusterSim::run(&faulty_config()).unwrap();
    assert_eq!(render_csv(&a), render_csv(&b));
    // A different seed gives a different trajectory.
    let c = ClusterSim::run(&faulty_config().seed(0xfa08)).unwrap();
    assert_ne!(render_csv(&a), render_csv(&c));
}
