//! Differential test: the coalescing miss relay is **bit-identical** to
//! the legacy independent relay whenever coalescing cannot trigger —
//! fixed-ratio misses (no key identity, so nothing ever coalesces),
//! faulted runs whose forced misses are keyless by construction, and a
//! cache-backed regime whose fetches are too short for any two same-key
//! misses to overlap. Fingerprints are FNV-1a over the raw f32 bit
//! patterns of every `(s, d)` record, the PR 3/4 pattern: any RNG
//! drift, reordering, or rounding introduced by the key threading or
//! the coalesced database stage fails the suite.
//!
//! A final test pins the other side: in a regime where same-key misses
//! *do* overlap, the coalesced relay must actually diverge and report
//! delayed hits — proving the switch is live, not vacuously equal.

use memlat_cluster::{
    CacheBackedConfig, CacheRouting, ClientPolicy, ClusterSim, FaultPlan, MissMode, MissRelay,
    RetryPolicy, SimConfig, SimOutput,
};
use memlat_model::ModelParams;

/// FNV-1a over the f32 bit patterns of `(s, d)` pairs, server-major.
fn fnv1a_records(records: &[Vec<(f32, f32)>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut push = |bits: u32| {
        for b in bits.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
    };
    for server in records {
        for &(s, d) in server {
            push(s.to_bits());
            push(d.to_bits());
        }
    }
    h
}

fn records_of(out: &SimOutput) -> Vec<Vec<(f32, f32)>> {
    (0..out.shares().len())
        .map(|j| out.records(j).iter().collect())
        .collect()
}

/// Runs `base` under both relays at 1 and 4 threads and asserts every
/// record fingerprint and every summary is identical; the coalesced runs
/// must additionally report zero delayed hits (the regime guarantees
/// none can occur) with every database trip counted as a dispatch.
fn assert_relay_invisible(base: &SimConfig) {
    let independent = ClusterSim::run(&base.clone().threads(1)).unwrap();
    assert!(
        independent.total_keys() > 1_000,
        "run produced too few keys to be meaningful"
    );
    let reference = fnv1a_records(&records_of(&independent));
    assert!(!independent.coalesce().any(), "independent relay counted");
    for threads in [1usize, 4] {
        for relay in [MissRelay::Independent, MissRelay::Coalesced] {
            let out = ClusterSim::run(&base.clone().threads(threads).miss_relay(relay)).unwrap();
            assert_eq!(
                fnv1a_records(&records_of(&out)),
                reference,
                "records diverged at threads={threads} relay={relay:?}"
            );
            assert_eq!(
                out.db_latency_stats(),
                independent.db_latency_stats(),
                "db summary diverged at threads={threads} relay={relay:?}"
            );
            assert_eq!(out.total_keys(), independent.total_keys());
            assert_eq!(out.miss_ratio(), independent.miss_ratio());
            let c = out.coalesce();
            if relay == MissRelay::Coalesced {
                assert_eq!(c.delayed_hits, 0, "a delayed hit slipped in");
                assert_eq!(c.wait_time, 0.0);
                // Every database trip was a dispatched fetch.
                assert_eq!(c.dispatched, out.db_latency_stats().count());
            } else {
                assert!(!c.any(), "independent relay must count nothing");
            }
        }
    }
}

/// Table-3 configuration: fixed-ratio misses carry no key identity, so
/// the coalesced relay must walk the exact legacy path.
#[test]
fn coalescing_off_is_bit_identical_on_table3_config() {
    let params = ModelParams::builder().build().unwrap();
    let base = SimConfig::new(params)
        .duration(0.4)
        .warmup(0.1)
        .seed(0xc0a1e5ce);
    assert_relay_invisible(&base);
}

/// Faulted configuration with timeouts and retries: forced misses reach
/// the database keyless by construction and must never coalesce.
#[test]
fn coalescing_off_is_bit_identical_on_faulted_config() {
    let params = ModelParams::builder().build().unwrap();
    let base = SimConfig::new(params)
        .duration(0.4)
        .warmup(0.1)
        .seed(0xfa017)
        .fault_plan(
            FaultPlan::none()
                .crash(1, 0.15, 0.25)
                .slowdown(2, 0.2, 0.4, 4.0),
        )
        .client(
            ClientPolicy::none()
                .timeout(5e-3)
                .retry(RetryPolicy::default()),
        );
    assert_relay_invisible(&base);
}

/// Cache-backed configuration whose fetch concurrency never exceeds 1:
/// a *single* server, so there is exactly one cache and a missed key is
/// demand-filled the instant it misses — the same key cannot miss again
/// until evicted (seconds away), so no two same-key fetches ever
/// overlap. (With multiple servers a hot-tail key can miss on two
/// private caches inside one fetch window, which is real coalescing,
/// not a differential regime.) The database is explicitly sharded wide
/// enough to stay offloaded under the *emergent* ~44% miss ratio — the
/// auto-sizer only knows the configured 1% — keeping fetch windows at
/// the 20 µs service floor. Even with real key identities the coalesced
/// relay must match the legacy path bit-for-bit.
#[test]
fn coalescing_off_is_bit_identical_on_cache_backed_config() {
    let params = ModelParams::builder()
        .servers(1)
        .db_service_rate(50_000.0)
        .build()
        .unwrap();
    let base = SimConfig::new(params)
        .duration(0.4)
        .warmup(0.1)
        .seed(0xcac4ed)
        .db_shards(64)
        .miss_mode(MissMode::CacheBacked(CacheBackedConfig {
            memory_bytes: 48 << 20,
            keyspace: 2_000_000,
            skew: 1.01,
            mean_value_bytes: 329.0,
            routing: CacheRouting::Independent,
        }));
    assert_relay_invisible(&base);
}

/// The other side of the differential: with slow fetches against a
/// small, hot keyspace, same-key misses overlap constantly — the
/// coalesced relay must diverge from the independent one, report
/// delayed hits, and dispatch strictly fewer database fetches.
#[test]
fn coalescing_diverges_when_fetches_overlap() {
    let params = ModelParams::builder()
        .db_service_rate(200.0)
        .build()
        .unwrap();
    let base = SimConfig::new(params)
        .duration(0.4)
        .warmup(0.1)
        .seed(0xde1a7ed)
        .miss_mode(MissMode::CacheBacked(CacheBackedConfig {
            memory_bytes: 1 << 20,
            keyspace: 50_000,
            skew: 1.1,
            mean_value_bytes: 300.0,
            routing: CacheRouting::Independent,
        }));
    let independent = ClusterSim::run(&base).unwrap();
    let coalesced = ClusterSim::run(&base.clone().miss_relay(MissRelay::Coalesced)).unwrap();
    // Server-side streams are identical (the relay is post-merge): same
    // keys, same misses.
    assert_eq!(independent.total_keys(), coalesced.total_keys());
    assert_eq!(independent.miss_ratio(), coalesced.miss_ratio());
    let c = coalesced.coalesce();
    assert!(c.delayed_hits > 0, "regime should coalesce heavily");
    assert!(c.wait_time > 0.0);
    assert_eq!(
        c.dispatched + c.delayed_hits,
        coalesced.db_latency_stats().count(),
        "every db-path resolution is a dispatch or a delayed hit"
    );
    assert!(
        c.dispatched < independent.db_latency_stats().count(),
        "coalescing must shed dispatches"
    );
    assert_ne!(
        fnv1a_records(&records_of(&independent)),
        fnv1a_records(&records_of(&coalesced)),
        "db latencies must actually differ"
    );
    // And the coalesced run itself stays thread-count invariant.
    let par = ClusterSim::run(&base.threads(4).miss_relay(MissRelay::Coalesced)).unwrap();
    assert_eq!(
        fnv1a_records(&records_of(&coalesced)),
        fnv1a_records(&records_of(&par)),
        "coalesced run diverged across thread counts"
    );
    assert_eq!(par.coalesce(), c);
}
