//! Property-based tests of the cluster simulator's invariants.

use memlat_cluster::{assembly::assemble_requests, ClusterSim, SimConfig};
use memlat_model::{ArrivalPattern, ModelParams};
use proptest::prelude::*;
use rand::SeedableRng;

fn quick_cfg(rho: f64, q: f64, xi: f64, r: f64, seed: u64) -> SimConfig {
    let params = ModelParams::builder()
        .arrival(ArrivalPattern::GeneralizedPareto { xi })
        .key_rate_per_server(rho * 80_000.0)
        .concurrency(q)
        .miss_ratio(r)
        .build()
        .unwrap();
    SimConfig::new(params)
        .duration(0.15)
        .warmup(0.05)
        .seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation and sanity across random stable configurations:
    /// records split across servers, utilization ≈ ρ, miss ratio ≈ r,
    /// and all latencies are positive and causal.
    #[test]
    fn sim_output_invariants(
        rho in 0.1f64..0.85,
        q in 0.0f64..0.4,
        xi in 0.0f64..0.5,
        r in 0.0f64..0.1,
        seed in 0u64..1000,
    ) {
        let out = ClusterSim::run(&quick_cfg(rho, q, xi, r, seed)).unwrap();
        let total: usize = (0..4).map(|j| out.records(j).len()).sum();
        prop_assert_eq!(total as u64, out.total_keys());
        prop_assert!(out.total_keys() > 0);
        for &u in out.utilization() {
            prop_assert!((u - rho).abs() < 0.15, "util {u} vs rho {rho}");
        }
        prop_assert!((out.miss_ratio() - r).abs() < 0.05, "miss {} vs {r}", out.miss_ratio());
        for j in 0..4 {
            for (s, d) in out.records(j) {
                prop_assert!(s > 0.0 && s.is_finite());
                prop_assert!(d >= 0.0 && d.is_finite());
            }
        }
    }

    /// Same seed ⇒ identical output; different seed ⇒ different traffic.
    #[test]
    fn determinism(rho in 0.2f64..0.7, seed in 0u64..500) {
        let a = ClusterSim::run(&quick_cfg(rho, 0.1, 0.15, 0.01, seed)).unwrap();
        let b = ClusterSim::run(&quick_cfg(rho, 0.1, 0.15, 0.01, seed)).unwrap();
        prop_assert_eq!(a.total_keys(), b.total_keys());
        prop_assert_eq!(a.records(0), b.records(0));
        let c = ClusterSim::run(&quick_cfg(rho, 0.1, 0.15, 0.01, seed + 1)).unwrap();
        prop_assert!(a.total_keys() != c.total_keys() || a.records(0) != c.records(0));
    }

    /// Assembled request statistics are internally consistent for any
    /// fan-out: total ≥ network + max-component, components non-negative.
    #[test]
    fn assembly_consistency(n in 1u64..500, seed in 0u64..200) {
        let out = ClusterSim::run(&quick_cfg(0.6, 0.1, 0.15, 0.02, 7)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let stats = assemble_requests(&out, n, 500, &mut rng);
        prop_assert!(stats.ts.mean > 0.0);
        prop_assert!(stats.td.mean >= 0.0);
        prop_assert!(stats.total.mean >= stats.network + stats.ts.mean - 1e-12);
        prop_assert!(stats.total.mean >= stats.network + stats.td.mean - 1e-12);
        prop_assert!(stats.total.mean <= stats.network + stats.ts.mean + stats.td.mean + 1e-12);
        prop_assert!(stats.ts.lower <= stats.ts.mean && stats.ts.mean <= stats.ts.upper);
    }

    /// The pooled-quantile measured latency is monotone in the fan-out N
    /// on a fixed record population.
    #[test]
    fn measured_latency_monotone_in_n(seed in 0u64..100) {
        let out = ClusterSim::run(&quick_cfg(0.7, 0.1, 0.15, 0.0, seed)).unwrap();
        let mut prev = 0.0;
        for n in [1u64, 10, 100, 1_000] {
            let v = out.expected_server_latency(n);
            prop_assert!(v >= prev, "n={n}: {v} < {prev}");
            prev = v;
        }
    }
}
