//! Differential proof that the miss-state refactor (the `MissState`
//! trait behind fixed-ratio and LRU-backed deciders, plus consistent-
//! hash routing) is invisible to the analytic fixed-ratio mode — and
//! *visible* where it must be.
//!
//! The fingerprint constant below was captured at the refactor boundary
//! from the pre-trait simulator's output (which the fault-differential
//! goldens independently pin back to commit `008cca9`). Fixed-ratio runs
//! must reproduce it bit-for-bit at every thread count and block size:
//! if this test fails, the analytic hot path changed — a regression, not
//! a tolerance issue.

use memlat_cluster::{CacheBackedConfig, CacheRouting, ClusterSim, MissMode, SimConfig, SimOutput};
use memlat_model::ModelParams;

const SEED: u64 = 0x70e7;

/// Golden FNV-1a fingerprint of the fixed-ratio run at `config()`,
/// captured from the pre-`MissState` simulator.
const GOLDEN_FIXED_FNV: u64 = 0x3af6_61dd_e724_d184;

fn config() -> SimConfig {
    let params = ModelParams::builder().build().unwrap();
    SimConfig::new(params).duration(0.3).warmup(0.1).seed(SEED)
}

/// Like [`config`], but with headroom for the ring's hottest server:
/// consistent hashing concentrates up to ~1.4× the balanced share on
/// one server, so the balanced ρ must stay below ~0.7.
fn routed_config() -> SimConfig {
    let params = ModelParams::builder()
        .key_rate_per_server(40_000.0)
        .build()
        .unwrap();
    SimConfig::new(params).duration(0.3).warmup(0.1).seed(SEED)
}

fn routed_cache() -> CacheBackedConfig {
    CacheBackedConfig {
        memory_bytes: 4 << 20,
        keyspace: 200_000,
        skew: 1.05,
        mean_value_bytes: 300.0,
        routing: CacheRouting::ConsistentHash { vnodes: 128 },
    }
}

/// FNV-1a over the f32 bit patterns of every `(s, d)` record, servers
/// in order — any single-bit difference in any per-key latency flips it.
fn fnv1a_records(out: &SimOutput) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for j in 0..out.shares().len() {
        for (s, d) in out.records(j) {
            eat(u64::from(s.to_bits()));
            eat(u64::from(d.to_bits()));
        }
    }
    h
}

/// The tentpole's safety contract: fixed-ratio output is bit-identical
/// pre/post refactor at every `threads × block` combination.
#[test]
fn fixed_ratio_is_bit_identical_across_threads_and_blocks() {
    for threads in [1usize, 4] {
        for block in [1usize, 256, 1024] {
            let out = ClusterSim::run(&config().threads(threads).block(block)).unwrap();
            assert_eq!(
                fnv1a_records(&out),
                GOLDEN_FIXED_FNV,
                "threads={threads} block={block}: per-key record bits moved"
            );
        }
    }
}

/// The refactor must preserve 1-vs-N bit-identity for the *stateful*
/// decider too: a routed LRU-backed run draws every random number from
/// per-server streams, so the thread count cannot touch the output.
#[test]
fn routed_run_is_bit_identical_across_threads() {
    let cfg = routed_config().miss_mode(MissMode::CacheBacked(routed_cache()));
    let sequential = ClusterSim::run(&cfg.clone().threads(1)).unwrap();
    let parallel = ClusterSim::run(&cfg.threads(4)).unwrap();
    assert_eq!(fnv1a_records(&sequential), fnv1a_records(&parallel));
    assert_eq!(
        sequential.miss_ratio().to_bits(),
        parallel.miss_ratio().to_bits()
    );
    assert_eq!(sequential.cached_items(), parallel.cached_items());
}

/// Divergence sanity: switching the cache population from independent
/// full-Zipf streams to ring-routed conditional streams must change the
/// miss process — same seed, different key law — and must induce the
/// unbalanced ring shares in place of the balanced ones.
#[test]
fn routing_changes_the_miss_stream_and_the_shares() {
    let mut independent_cache = routed_cache();
    independent_cache.routing = CacheRouting::Independent;
    let independent = ClusterSim::run(
        &routed_config()
            .threads(2)
            .miss_mode(MissMode::CacheBacked(independent_cache)),
    )
    .unwrap();
    let routed = ClusterSim::run(
        &routed_config()
            .threads(2)
            .miss_mode(MissMode::CacheBacked(routed_cache())),
    )
    .unwrap();

    // Both emerge a real miss ratio...
    assert!(independent.miss_ratio() > 0.0);
    assert!(routed.miss_ratio() > 0.0);
    // ...but from different key processes.
    assert_ne!(
        fnv1a_records(&independent),
        fnv1a_records(&routed),
        "routing left the per-key records untouched"
    );

    // Independent mode keeps the configured balanced shares; routing
    // replaces them with the ring-induced masses, which sum to 1 but
    // are not uniform.
    let m = independent.shares().len();
    assert!(independent
        .shares()
        .iter()
        .all(|&p| (p - 1.0 / m as f64).abs() < 1e-12));
    let total: f64 = routed.shares().iter().sum();
    assert!((total - 1.0).abs() < 1e-9, "routed shares sum {total}");
    assert!(
        routed
            .shares()
            .iter()
            .any(|&p| (p - 1.0 / m as f64).abs() > 1e-3),
        "ring shares suspiciously uniform: {:?}",
        routed.shares()
    );

    // Each routed server stores only its owned slice, so the cluster
    // holds ~one copy of the hot set; independent servers each cache
    // their own copy. Total resident items therefore differ.
    assert!(routed.cached_items() > 0);
    assert!(independent.cached_items() > 0);
}
