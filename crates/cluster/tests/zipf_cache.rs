//! Asserts the Zipf alias table is built once per `(keyspace, skew)`
//! per scratch, not once per server per sweep point.
//!
//! The alias-table build is `O(keyspace)`. Before the popularity cache,
//! every cache-backed server run rebuilt it — a sweep of P points over
//! M servers paid `P × M` builds of a table that never changes. The
//! cache in [`SimScratch`] keys one shared handle by
//! `(keyspace, skew bits)`, so the same sweep pays exactly one build
//! (plus one per keyspace/skew change).
//!
//! `memlat_workload::alias_builds()` is a process-global counter, so
//! this test lives in its own integration-test binary: `cargo test`
//! runs each integration test file in its own process, keeping the
//! exact-count assertions interference-free.

use memlat_cluster::{
    CacheBackedConfig, CacheRouting, ClusterSim, MissMode, Retention, SimConfig, SimScratch,
};
use memlat_model::ModelParams;
use memlat_workload::alias_builds;

fn cache_cfg(keyspace: u64, skew: f64, seed: u64) -> SimConfig {
    let params = ModelParams::builder().build().unwrap();
    SimConfig::new(params)
        .duration(0.05)
        .warmup(0.01)
        .seed(seed)
        .retention(Retention::Summary)
        .miss_mode(MissMode::CacheBacked(CacheBackedConfig {
            memory_bytes: 4 << 20,
            keyspace,
            skew,
            mean_value_bytes: 300.0,
            routing: CacheRouting::Independent,
        }))
}

#[test]
fn sweep_builds_alias_table_once_per_configuration() {
    let mut scratch = SimScratch::new();

    // A 5-point sweep over 4 servers at a fixed (keyspace, skew):
    // exactly one build, not 20.
    let before = alias_builds();
    for seed in 0..5u64 {
        ClusterSim::run_with(&cache_cfg(200_000, 1.01, seed), &mut scratch).unwrap();
    }
    assert_eq!(
        alias_builds() - before,
        1,
        "a fixed-configuration sweep must build the alias table exactly once"
    );

    // Changing the skew (or keyspace) invalidates the cache: one more
    // build, then reuse again.
    let before = alias_builds();
    for seed in 0..3u64 {
        ClusterSim::run_with(&cache_cfg(200_000, 0.9, seed), &mut scratch).unwrap();
    }
    assert_eq!(alias_builds() - before, 1);

    // Fixed-ratio runs never touch the popularity law at all.
    let before = alias_builds();
    let params = ModelParams::builder().build().unwrap();
    ClusterSim::run_with(
        &SimConfig::new(params)
            .duration(0.05)
            .seed(7)
            .retention(Retention::Summary),
        &mut scratch,
    )
    .unwrap();
    assert_eq!(alias_builds() - before, 0);
}

#[test]
fn cached_popularity_is_bit_identical_to_fresh_build() {
    // The cache must be invisible in the output: a run reusing the
    // cached table equals a run that built its own from scratch.
    let a = ClusterSim::run(&cache_cfg(150_000, 1.05, 42)).unwrap();
    let mut scratch = SimScratch::new();
    ClusterSim::run_with(&cache_cfg(150_000, 1.05, 41), &mut scratch).unwrap();
    let b = ClusterSim::run_with(&cache_cfg(150_000, 1.05, 42), &mut scratch).unwrap();
    assert_eq!(a.summaries(), b.summaries());
    assert_eq!(a.miss_ratio().to_bits(), b.miss_ratio().to_bits());
    assert_eq!(a.total_keys(), b.total_keys());
}
