//! Property-based tests of the per-key fetch-coalescing invariants,
//! over randomized cache-backed cluster configurations and synthetic
//! keyed miss streams.
//!
//! The invariants locked down here:
//!
//! * **Conservation** — every sampled key resolves exactly once: hits +
//!   database-path resolutions equal the total, and every database-path
//!   resolution is either a dispatched fetch or a delayed hit.
//! * **Waiter drain** — the database stage answers every miss arrival
//!   exactly once, in arrival order, with its origin intact; no waiter
//!   is ever leaked or double-resolved.
//! * **Residual exactness** — a delayed hit waits exactly the residual
//!   of the outstanding fetch it joins: strictly positive, bounded by
//!   that fetch's full sojourn, and equal to its completion time minus
//!   the waiter's arrival time.
//! * **Dispatch economy** — coalescing never increases the number of
//!   database dispatches; with all-distinct keys it changes nothing at
//!   all (bit-identical to the independent relay).

use memlat_cluster::{
    database::{run_db_stage_coalesced_with, run_db_stage_with, MissArrival, NO_KEY},
    CacheBackedConfig, CacheRouting, ClusterSim, MissMode, MissRelay, SimConfig,
};
use memlat_des::stream_rng;
use memlat_model::ModelParams;
use proptest::prelude::*;
use rand::RngCore;
use std::collections::HashMap;

/// A cache-backed cluster with a deliberately slow database, so that
/// outstanding-fetch windows are long and coalescing actually triggers.
fn coalescing_cfg(db_rate: f64, mem_mb: usize, keyspace: u64, skew: f64, seed: u64) -> SimConfig {
    let params = ModelParams::builder()
        .db_service_rate(db_rate)
        .build()
        .unwrap();
    SimConfig::new(params)
        .duration(0.15)
        .warmup(0.05)
        .seed(seed)
        .miss_mode(MissMode::CacheBacked(CacheBackedConfig {
            memory_bytes: mem_mb << 20,
            keyspace,
            skew,
            mean_value_bytes: 300.0,
            routing: CacheRouting::Independent,
        }))
        .miss_relay(MissRelay::Coalesced)
}

/// A sorted synthetic miss stream from random inter-arrival gaps and a
/// small key pool (small enough that same-key overlap is common).
fn synthetic_stream(gaps_us: &[f64], keys: &[u64]) -> Vec<MissArrival> {
    let mut t = 0.0;
    gaps_us
        .iter()
        .zip(keys)
        .enumerate()
        .map(|(i, (&gap, &key))| {
            t += gap * 1e-6;
            MissArrival {
                time: t,
                origin: (0, i as u32),
                key,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Full-run conservation: hits + database-path resolutions == total
    /// keys, and every database-path resolution is a dispatch or a
    /// delayed hit — nothing leaks, nothing double-counts, and the
    /// record view agrees with the counter view.
    #[test]
    fn coalesced_run_conserves_every_key(
        db_rate in 150.0f64..2_000.0,
        mem_mb in 1usize..8,
        keyspace in 20_000u64..200_000,
        skew in 0.8f64..1.2,
        seed in 0u64..500,
    ) {
        let cfg = coalescing_cfg(db_rate, mem_mb, keyspace, skew, seed);
        let out = ClusterSim::run(&cfg).unwrap();
        let jobs: u64 = out.summaries().iter().map(|s| s.counters.jobs).sum();
        let misses: u64 = out.summaries().iter().map(|s| s.counters.misses).sum();
        prop_assert_eq!(jobs, out.total_keys());
        // The db stage answered every miss exactly once...
        prop_assert_eq!(out.db_latency_stats().count(), misses);
        // ...and each answer was a dispatched fetch or a delayed hit.
        let c = out.coalesce();
        prop_assert_eq!(c.dispatched + c.delayed_hits, misses);
        // A delayed hit always waits a strictly positive residual.
        prop_assert_eq!(c.delayed_hits > 0, c.wait_time > 0.0);
        // The record view agrees: db-positive records == misses.
        let mut db_records = 0u64;
        for j in 0..out.shares().len() {
            for (_, d) in out.records(j) {
                if d > 0.0 {
                    db_records += 1;
                }
            }
        }
        prop_assert_eq!(db_records, misses);
    }

    /// Coalescing never increases database dispatches: against the
    /// independent relay on the identical server streams, the coalesced
    /// relay answers the same number of misses with no more fetches.
    #[test]
    fn coalescing_never_increases_dispatches(
        db_rate in 150.0f64..2_000.0,
        keyspace in 20_000u64..100_000,
        seed in 0u64..500,
    ) {
        let coalesced_cfg = coalescing_cfg(db_rate, 2, keyspace, 1.05, seed);
        let independent_cfg = coalesced_cfg.clone().miss_relay(MissRelay::Independent);
        let coalesced = ClusterSim::run(&coalesced_cfg).unwrap();
        let independent = ClusterSim::run(&independent_cfg).unwrap();
        // Same server-side streams: the relay choice is post-merge.
        prop_assert_eq!(coalesced.total_keys(), independent.total_keys());
        prop_assert_eq!(coalesced.miss_ratio(), independent.miss_ratio());
        prop_assert_eq!(
            coalesced.db_latency_stats().count(),
            independent.db_latency_stats().count()
        );
        let c = coalesced.coalesce();
        prop_assert!(c.dispatched <= independent.db_latency_stats().count());
        prop_assert!(!independent.coalesce().any());
    }

    /// Database-stage waiter drain and residual exactness on synthetic
    /// keyed streams: every arrival is answered once, in order, with its
    /// origin intact; every delayed hit waits exactly the residual of
    /// the outstanding fetch it joined, strictly positive and no longer
    /// than that fetch's full sojourn.
    #[test]
    fn db_stage_drains_waiters_with_exact_residuals(
        gaps_us in proptest::collection::vec(1.0f64..2_000.0, 20..200),
        key_picks in proptest::collection::vec(0u64..8, 20..200),
        shards in 1usize..4,
        mu_d in 300.0f64..3_000.0,
        seed in 0u64..1_000,
    ) {
        let n = gaps_us.len().min(key_picks.len());
        let misses = synthetic_stream(&gaps_us[..n], &key_picks[..n]);
        let mut rng = stream_rng(seed, 42);
        let mut events: Vec<((u32, u32), f64, bool)> = Vec::new();
        run_db_stage_coalesced_with(&misses, shards, mu_d, &mut rng, |o, d, delayed| {
            events.push((o, d, delayed));
        });
        // Drain: exactly one resolution per arrival, in arrival order.
        prop_assert_eq!(events.len(), misses.len());
        // Completion time and sojourn of each key's outstanding fetch,
        // reconstructed independently of the implementation's map.
        let mut fetch: HashMap<u64, (f64, f64)> = HashMap::new();
        for (m, &(origin, d, delayed)) in misses.iter().zip(&events) {
            prop_assert_eq!(origin, m.origin);
            prop_assert!(d > 0.0);
            if delayed {
                let &(done_at, sojourn) = fetch
                    .get(&m.key)
                    .expect("delayed hit with no outstanding fetch");
                // The joined fetch was still outstanding...
                prop_assert!(done_at > m.time);
                // ...and the wait is exactly its residual, which can
                // never exceed the full sojourn (fetches dispatch at or
                // before the waiter arrives in a sorted stream).
                prop_assert!((d - (done_at - m.time)).abs() <= 1e-12 * done_at.abs().max(1.0));
                prop_assert!(d <= sojourn + 1e-12);
            } else {
                // A dispatch: any prior same-key fetch must have already
                // completed, or this would have parked as a waiter.
                if let Some(&(done_at, _)) = fetch.get(&m.key) {
                    prop_assert!(done_at <= m.time);
                }
                fetch.insert(m.key, (m.time + d, d));
            }
        }
        // Dispatch economy: never more fetches than arrivals, and the
        // split is conserved.
        let dispatched = events.iter().filter(|e| !e.2).count();
        let delayed = events.iter().filter(|e| e.2).count();
        prop_assert_eq!(dispatched + delayed, misses.len());
    }

    /// With all-distinct keys (or keyless arrivals) nothing can
    /// coalesce: the coalesced stage must reproduce the independent
    /// stage bit-for-bit, including its RNG consumption.
    #[test]
    fn db_stage_with_distinct_keys_matches_independent(
        gaps_us in proptest::collection::vec(1.0f64..2_000.0, 20..100),
        keyless_coin in 0u64..2,
        shards in 1usize..4,
        mu_d in 300.0f64..3_000.0,
        seed in 0u64..1_000,
    ) {
        let keyless = keyless_coin == 1;
        let keys: Vec<u64> = (0..gaps_us.len() as u64)
            .map(|i| if keyless { NO_KEY } else { i })
            .collect();
        let misses = synthetic_stream(&gaps_us, &keys);
        let mut rng_i = stream_rng(seed, 42);
        let mut independent: Vec<((u32, u32), f64)> = Vec::new();
        run_db_stage_with(&misses, shards, mu_d, &mut rng_i, |o, d| {
            independent.push((o, d));
        });
        let mut rng_c = stream_rng(seed, 42);
        let mut coalesced: Vec<((u32, u32), f64)> = Vec::new();
        let mut any_delayed = false;
        run_db_stage_coalesced_with(&misses, shards, mu_d, &mut rng_c, |o, d, delayed| {
            any_delayed |= delayed;
            coalesced.push((o, d));
        });
        prop_assert!(!any_delayed, "nothing can coalesce here");
        prop_assert_eq!(independent.len(), coalesced.len());
        for (a, b) in independent.iter().zip(&coalesced) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        // Identical RNG consumption: the next draw agrees.
        prop_assert_eq!(rng_i.next_u64(), rng_c.next_u64());
    }
}
