//! Differential test: the streaming zero-materialization hot path in
//! [`ClusterSim`] is bit-identical to a materialize-then-fold reference
//! pipeline built from the same public primitives.
//!
//! The reference reconstructs the pre-streaming architecture: collect
//! every per-key record into a `Vec` first (via [`simulate_server`],
//! the buffering wrapper), then fold the buffers into records + miss
//! stream + database stage in a second pass — exactly the shape the
//! simulator had before the per-key loop was converted to a sink.
//! Fingerprints are FNV-1a over the raw f32 bit patterns, so any
//! reordering, rounding, or RNG drift fails the test.

use memlat_cluster::{
    config::MissMode,
    database::{run_db_stage_with, MissArrival},
    fault::{ClientPolicy, ServerFaults},
    server::{simulate_server, ServerSimParams},
    ClusterSim, SimConfig,
};
use memlat_des::stream_rng;
use memlat_dist::GapLaw;
use memlat_model::ModelParams;

/// FNV-1a over the f32 bit patterns of `(s, d)` pairs, server-major —
/// the same fingerprint the fault differential suite pins goldens with.
fn fnv1a_records(records: &[Vec<(f32, f32)>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut push = |bits: u32| {
        for b in bits.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
    };
    for server in records {
        for &(s, d) in server {
            push(s.to_bits());
            push(d.to_bits());
        }
    }
    h
}

/// The pre-streaming reference: materialize every server's records,
/// then fold misses and the database stage over the buffers.
fn materialized_reference(params: &ModelParams, cfg: &SimConfig) -> Vec<Vec<(f32, f32)>> {
    let shares = params.load().shares(params.servers()).unwrap();
    let q = params.concurrency();
    let mut records: Vec<Vec<(f32, f32)>> = Vec::new();
    let mut all_misses: Vec<MissArrival> = Vec::new();
    for (j, &p) in shares.iter().enumerate() {
        let mut recs = Vec::new();
        if p > 0.0 {
            let lam_j = p * params.total_key_rate();
            let gaps: GapLaw = params.arrival().gap_law((1.0 - q) * lam_j).unwrap();
            let mut rng = stream_rng(cfg.seed, 1000 + j as u64);
            let run = simulate_server(
                ServerSimParams {
                    interarrival: gaps,
                    concurrency: q,
                    service_rate: params.service_rate(),
                    miss_ratio: params.miss_ratio(),
                    miss_mode: &MissMode::FixedRatio,
                    popularity: None,
                    routed: None,
                    warmup: cfg.warmup,
                    duration: cfg.duration,
                    faults: ServerFaults::none(),
                    client: ClientPolicy::none(),
                    // The reference stays on the scalar loop; the
                    // streaming run under test uses the default block.
                    block: 1,
                },
                &mut rng,
            )
            .unwrap();
            // Second pass over the materialized buffer: records + misses.
            for (idx, r) in run.records.iter().enumerate() {
                if r.missed || r.forced {
                    all_misses.push(MissArrival {
                        time: r.completion,
                        origin: (j as u32, idx as u32),
                        key: if r.forced {
                            memlat_cluster::database::NO_KEY
                        } else {
                            r.key
                        },
                    });
                }
                recs.push((r.server_latency as f32, 0.0f32));
            }
        }
        records.push(recs);
    }
    all_misses.sort_by(|a, b| a.time.total_cmp(&b.time));
    let mut db_rng = stream_rng(cfg.seed, 2_000_000);
    run_db_stage_with(
        &all_misses,
        cfg.effective_db_shards(),
        params.db_service_rate(),
        &mut db_rng,
        |(server, idx), d| records[server as usize][idx as usize].1 = d as f32,
    );
    records
}

fn streaming_records(cfg: &SimConfig) -> Vec<Vec<(f32, f32)>> {
    let out = ClusterSim::run(cfg).unwrap();
    (0..out.shares().len())
        .map(|j| out.records(j).iter().collect())
        .collect()
}

fn assert_bit_identical(params: ModelParams, seed: u64) {
    let base = SimConfig::new(params.clone())
        .duration(0.4)
        .warmup(0.1)
        .seed(seed);
    let reference = materialized_reference(&params, &base);
    assert!(
        reference.iter().map(Vec::len).sum::<usize>() > 1_000,
        "reference run produced too few keys to be meaningful"
    );
    let ref_fnv = fnv1a_records(&reference);
    for threads in [1usize, 4] {
        let got = streaming_records(&base.clone().threads(threads));
        assert_eq!(
            got.iter().map(Vec::len).collect::<Vec<_>>(),
            reference.iter().map(Vec::len).collect::<Vec<_>>(),
            "per-server key counts diverged at threads={threads}"
        );
        assert_eq!(
            fnv1a_records(&got),
            ref_fnv,
            "streaming records diverged from materialized reference at threads={threads}"
        );
    }
}

/// Table-3 configuration (the paper's default Facebook parameters).
#[test]
fn streaming_matches_materialized_on_table3_config() {
    let params = ModelParams::builder().build().unwrap();
    assert_bit_identical(params, 0x7ab1e3);
}

/// Fig-7-style configuration: elevated per-server key rate, where the
/// queueing (not the service floor) dominates and any drift in the
/// draw order would show immediately.
#[test]
fn streaming_matches_materialized_on_fig07_config() {
    let params = ModelParams::builder()
        .key_rate_per_server(75_000.0)
        .build()
        .unwrap();
    assert_bit_identical(params, 0xf17);
}
