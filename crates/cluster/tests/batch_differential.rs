//! Differential test: the block-batched hot path is bit-identical to
//! the scalar loop for every block size, at every thread count.
//!
//! The scalar reference (`block = 1`) takes the pre-batching per-key
//! route: one service draw, one FCFS submit, one miss coin per key.
//! The batched runs stage keys in structure-of-arrays lanes, bank raw
//! RNG bits, and run the transforms and the Lindley recursion as slice
//! scans — but consume the per-server RNG streams in exactly the same
//! order. Fingerprints are FNV-1a over raw f32 bit patterns, so any
//! drift in draw order, rounding, or record order fails the test.

use memlat_cluster::{ClusterSim, Retention, SimConfig, SimOutput};
use memlat_model::ModelParams;

/// FNV-1a over the f32 bit patterns of `(s, d)` pairs, server-major.
fn fnv1a_records(out: &SimOutput) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut push = |bits: u32| {
        for b in bits.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
    };
    for j in 0..out.shares().len() {
        for (s, d) in out.records(j) {
            push(s.to_bits());
            push(d.to_bits());
        }
    }
    h
}

fn assert_block_invariant(params: ModelParams, seed: u64) {
    let base = SimConfig::new(params).duration(0.4).warmup(0.1).seed(seed);
    // Scalar reference at one thread.
    let reference = ClusterSim::run(&base.clone().threads(1).block(1)).unwrap();
    assert!(
        reference.total_keys() > 1_000,
        "reference run produced too few keys to be meaningful"
    );
    let ref_fnv = fnv1a_records(&reference);
    // Power-of-two, odd (so blocks end mid-batch-cycle), and the tuned
    // default — each at the sequential and parallel thread counts.
    for block in [1024usize, 37, 256] {
        for threads in [1usize, 4] {
            let got = ClusterSim::run(&base.clone().threads(threads).block(block)).unwrap();
            assert_eq!(
                got.total_keys(),
                reference.total_keys(),
                "key count diverged at block={block} threads={threads}"
            );
            assert_eq!(
                fnv1a_records(&got),
                ref_fnv,
                "records diverged at block={block} threads={threads}"
            );
            assert_eq!(
                got.summaries(),
                reference.summaries(),
                "summaries diverged at block={block} threads={threads}"
            );
            assert_eq!(got.db_latency_stats(), reference.db_latency_stats());
            assert_eq!(got.miss_ratio().to_bits(), reference.miss_ratio().to_bits());
        }
    }
}

/// Table-3 configuration (the paper's default Facebook parameters).
#[test]
fn block_sizes_are_bit_identical_on_table3_config() {
    let params = ModelParams::builder().build().unwrap();
    assert_block_invariant(params, 0x7ab1e3);
}

/// Fig-7-style configuration: elevated per-server key rate, where the
/// queueing dominates and longer busy periods make the Lindley scan
/// carry state across many consecutive block boundaries.
#[test]
fn block_sizes_are_bit_identical_on_fig07_config() {
    let params = ModelParams::builder()
        .key_rate_per_server(75_000.0)
        .build()
        .unwrap();
    assert_block_invariant(params, 0xf17);
}

/// Summary retention must agree too: the bulk `push_slice` folds into
/// the Welford accumulator and sketch must match per-key pushes.
#[test]
fn block_summary_retention_matches_scalar_full() {
    let params = ModelParams::builder().build().unwrap();
    let base = SimConfig::new(params)
        .duration(0.3)
        .warmup(0.05)
        .seed(0xb10c);
    let scalar = ClusterSim::run(&base.clone().threads(1).block(1)).unwrap();
    let lean = ClusterSim::run(&base.threads(4).block(1024).retention(Retention::Summary)).unwrap();
    assert!(!lean.has_records());
    assert_eq!(scalar.summaries(), lean.summaries());
    assert_eq!(scalar.db_latency_stats(), lean.db_latency_stats());
    assert_eq!(scalar.db_latency_sketch(), lean.db_latency_sketch());
    // Sketch-answered quantiles (Summary has no exact ECDF) must agree
    // with the scalar run's sketch bit-for-bit.
    let k = memlat_stats::max_order_quantile(150);
    assert_eq!(
        scalar.pooled_latency_sketch().quantile(k).to_bits(),
        lean.server_latency_quantile(k).to_bits()
    );
}

/// Hedging runs are block-eligible (the hedge pass happens after the
/// per-server loop); the hedged output must not depend on block size.
#[test]
fn block_sizes_are_bit_identical_under_hedging() {
    use memlat_cluster::ClientPolicy;
    let params = ModelParams::builder().build().unwrap();
    let base = SimConfig::new(params)
        .duration(0.3)
        .warmup(0.05)
        .seed(0x4ed6)
        .client(ClientPolicy::none().hedge(2e-4));
    let scalar = ClusterSim::run(&base.clone().threads(1).block(1)).unwrap();
    assert!(scalar.resilience().hedges_sent > 0);
    for threads in [1usize, 4] {
        let got = ClusterSim::run(&base.clone().threads(threads).block(1024)).unwrap();
        assert_eq!(
            fnv1a_records(&got),
            fnv1a_records(&scalar),
            "threads={threads}"
        );
        assert_eq!(got.summaries(), scalar.summaries());
        assert_eq!(got.resilience(), scalar.resilience());
    }
}

/// Forced-scalar dispatch is bit-identical to whatever the host
/// auto-detected (AVX2 where available): the SIMD kernels share the
/// deterministic `dln`/`dexp` ports with the scalar fallback and use no
/// FMA, so instruction selection must be invisible in the output. On an
/// AVX2 host this proves SIMD ↔ scalar identity end to end through the
/// full cluster simulation; on hosts without AVX2 both runs take the
/// scalar path and the test degrades to a (still valid) self-check.
/// CI additionally runs a whole matrix leg under `MEMLAT_NO_SIMD=1`,
/// which pins detection off before any kernel runs.
#[test]
fn forced_scalar_dispatch_is_bit_identical() {
    let params = ModelParams::builder().build().unwrap();
    let base = SimConfig::new(params)
        .duration(0.3)
        .warmup(0.05)
        .seed(0x513d);
    let auto = ClusterSim::run(&base.clone().threads(4).block(1024)).unwrap();
    memlat_dist::simd::set_forced_scalar(true);
    let scalar = ClusterSim::run(&base.clone().threads(4).block(1024)).unwrap();
    let scalar_unblocked = ClusterSim::run(&base.threads(1).block(1)).unwrap();
    memlat_dist::simd::set_forced_scalar(false);
    assert!(!memlat_dist::simd::simd_active() || cfg!(target_arch = "x86_64"));
    assert_eq!(fnv1a_records(&auto), fnv1a_records(&scalar));
    assert_eq!(auto.summaries(), scalar.summaries());
    assert_eq!(auto.db_latency_stats(), scalar.db_latency_stats());
    assert_eq!(fnv1a_records(&auto), fnv1a_records(&scalar_unblocked));
    assert_eq!(auto.summaries(), scalar_unblocked.summaries());
}

/// A timeout that can never fire still forces the scalar path (the
/// eligibility check is conservative), so output stays pinned.
#[test]
fn inert_timeout_output_is_block_size_independent() {
    use memlat_cluster::ClientPolicy;
    let params = ModelParams::builder().build().unwrap();
    let base = SimConfig::new(params)
        .duration(0.2)
        .warmup(0.05)
        .seed(0x71e0)
        .client(ClientPolicy::none().timeout(1e3));
    let a = ClusterSim::run(&base.clone().block(1)).unwrap();
    let b = ClusterSim::run(&base.block(1024)).unwrap();
    assert_eq!(a.resilience().timeouts, 0);
    assert_eq!(fnv1a_records(&a), fnv1a_records(&b));
    assert_eq!(a.summaries(), b.summaries());
}
