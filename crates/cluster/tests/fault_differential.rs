//! Differential proof that fault injection is free when unused.
//!
//! The fault/resilience subsystem rewired the inner server loop (batch
//! stream + retry-queue merge, crash/slowdown/timeout branches). This
//! test pins the claim that none of it perturbs a healthy run: with an
//! empty [`FaultPlan`] and a passive [`ClientPolicy`], the simulator
//! must consume exactly the random draws of the pre-fault code path and
//! produce **bit-identical** output.
//!
//! The constants below were captured by running the pre-fault
//! simulator (commit `008cca9`, before this subsystem existed) at this
//! exact configuration. If this test fails, the healthy path changed —
//! that is a regression, not a tolerance issue.

use memlat_cluster::{ClientPolicy, ClusterSim, FaultPlan, SimConfig, SimOutput};
use memlat_model::ModelParams;

const SEED: u64 = 0xd1ff;

/// Golden fingerprints of the pre-fault simulator's output.
const GOLDEN_TOTAL_KEYS: u64 = 124_165;
const GOLDEN_RECORDS_FNV: u64 = 0xfb94_452f_18da_4da3;
// Re-captured when the GP gap law moved from libm `powf` to the
// deterministic `dexp(-ξ·dln u)` composition (the speculative block
// arrival pipeline): every inter-batch gap drifts by ≤ a few ulps,
// which the f32 records, key counts, and the other f64 statistics all
// absorb at this configuration — only this pooled f64 Welford mean
// moved, by 5 ulps. Earlier the constants survived the `ln`→`dln`
// service-law switch the same way.
const GOLDEN_POOLED_MEAN_BITS: u64 = 0x3f13_9b91_8c24_ffa0;
const GOLDEN_DB_MEAN_BITS: u64 = 0x3f51_300e_13f2_9e87;
const GOLDEN_ETS150_BITS: u64 = 0x3f3c_d96f_e000_0000;
const GOLDEN_MISS_RATIO_BITS: u64 = 0x3f84_95b1_6492_3aaa;
const GOLDEN_UTIL0_BITS: u64 = 0x3fe8_f1be_30d6_d5ac;

fn golden_config() -> SimConfig {
    let params = ModelParams::builder().build().unwrap();
    SimConfig::new(params)
        .duration(0.5)
        .warmup(0.1)
        .seed(SEED)
        .threads(1)
}

/// FNV-1a over the bit patterns of every `(s, d)` record, servers in
/// order — any single-bit difference in any per-key latency flips it.
fn records_fingerprint(out: &SimOutput) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for j in 0..out.shares().len() {
        for (s, d) in out.records(j) {
            eat(u64::from(s.to_bits()));
            eat(u64::from(d.to_bits()));
        }
    }
    h
}

fn assert_matches_golden(out: &SimOutput, label: &str) {
    assert_eq!(out.total_keys(), GOLDEN_TOTAL_KEYS, "{label}: total keys");
    assert_eq!(
        records_fingerprint(out),
        GOLDEN_RECORDS_FNV,
        "{label}: per-key record bits"
    );
    assert_eq!(
        out.pooled_latency_stats().mean().to_bits(),
        GOLDEN_POOLED_MEAN_BITS,
        "{label}: pooled latency mean"
    );
    assert_eq!(
        out.db_latency_stats().mean().to_bits(),
        GOLDEN_DB_MEAN_BITS,
        "{label}: db latency mean"
    );
    assert_eq!(
        out.expected_server_latency(150).to_bits(),
        GOLDEN_ETS150_BITS,
        "{label}: E[T_S(150)]"
    );
    assert_eq!(
        out.miss_ratio().to_bits(),
        GOLDEN_MISS_RATIO_BITS,
        "{label}: miss ratio"
    );
    assert_eq!(
        out.utilization()[0].to_bits(),
        GOLDEN_UTIL0_BITS,
        "{label}: server-0 utilization"
    );
}

#[test]
fn default_config_is_bit_identical_to_pre_fault_simulator() {
    let out = ClusterSim::run(&golden_config()).unwrap();
    assert_matches_golden(&out, "default config");
    // And the run really was fault-free.
    assert!(!out.resilience().any());
    assert_eq!(out.forced_miss_ratio(), 0.0);
}

#[test]
fn explicit_empty_plan_and_passive_client_change_nothing() {
    // Spelling out FaultPlan::none() / ClientPolicy::none() must be
    // exactly the defaults — no extra RNG draws, no new branches taken.
    let cfg = golden_config()
        .fault_plan(FaultPlan::none())
        .client(ClientPolicy::none());
    let out = ClusterSim::run(&cfg).unwrap();
    assert_matches_golden(&out, "explicit empty plan");
}

#[test]
fn empty_plan_is_bit_identical_at_every_thread_count() {
    for threads in [2, 4, 64] {
        let out = ClusterSim::run(&golden_config().threads(threads)).unwrap();
        assert_matches_golden(&out, &format!("{threads} threads"));
    }
}

#[test]
fn timeout_that_never_fires_still_changes_nothing() {
    // A timeout far above any sojourn takes the fault-aware branch but
    // never fails an attempt: the draw sequence must stay identical.
    let cfg = golden_config().client(ClientPolicy::none().timeout(1e3));
    let out = ClusterSim::run(&cfg).unwrap();
    assert_matches_golden(&out, "inert timeout");
    assert!(!out.resilience().any());
}
