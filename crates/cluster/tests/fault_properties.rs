//! Property-based tests of the fault-injection and client-resilience
//! invariants, over randomized fault plans and policies.

use memlat_cluster::{
    fault::hedge_outcome, ClientPolicy, ClusterSim, FaultPlan, RetryPolicy, SimConfig,
};
use memlat_model::ModelParams;
use proptest::prelude::*;

fn faulty_cfg(
    crash: (f64, f64),
    slow: (f64, f64, f64),
    client: ClientPolicy,
    seed: u64,
) -> SimConfig {
    let params = ModelParams::builder().build().unwrap();
    SimConfig::new(params)
        .duration(0.15)
        .warmup(0.05)
        .seed(seed)
        .fault_plan(
            FaultPlan::none()
                .crash(0, crash.0, crash.1)
                .slowdown(1, slow.0, slow.1, slow.2),
        )
        .client(client)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Request conservation under arbitrary faults and policies: every
    /// recorded key is exactly one of hit, regular miss, or forced
    /// miss — nothing is lost or double-counted, and the counter view
    /// agrees with the record view.
    #[test]
    fn timeout_fallback_conserves_request_count(
        crash_start in 0.06f64..0.12,
        crash_len in 0.01f64..0.05,
        factor in 2.0f64..8.0,
        timeout_us in 200.0f64..5_000.0,
        max_retries in 0u32..4,
        seed in 0u64..500,
    ) {
        let client = ClientPolicy::none()
            .timeout(timeout_us * 1e-6)
            .retry(RetryPolicy { max_retries, ..RetryPolicy::default() });
        let cfg = faulty_cfg(
            (crash_start, crash_start + crash_len),
            (0.06, 0.14, factor),
            client,
            seed,
        );
        let out = ClusterSim::run(&cfg).unwrap();
        let total = out.resilience();
        let mut hits = 0u64;
        let mut missed = 0u64;
        for j in 0..out.shares().len() {
            for (_, d) in out.records(j) {
                if d > 0.0 { missed += 1 } else { hits += 1 }
            }
        }
        // Records with db latency = regular misses + forced misses.
        let regular: u64 = out.summaries().iter().map(|s| s.counters.misses).sum();
        prop_assert_eq!(missed, regular + total.forced_misses);
        prop_assert_eq!(hits + missed, out.total_keys());
        // The db stage answered every miss, regular and forced.
        prop_assert_eq!(out.db_latency_stats().count(), regular + total.forced_misses);
        // Failure accounting: every forced miss exhausted its attempts,
        // and every failure (timeout or refusal) was either retried or
        // became a forced miss.
        let failures = total.timeouts + total.refused;
        prop_assert_eq!(failures, total.retries + total.forced_misses);
    }

    /// Retries never exceed the configured bound: with `R` retries
    /// allowed, at most `1 + R` attempts are issued per key, so the
    /// cluster-wide retry count is bounded by `R ×` (failures observed).
    #[test]
    fn retries_never_exceed_bound(
        max_retries in 0u32..4,
        base_us in 100.0f64..2_000.0,
        seed in 0u64..500,
    ) {
        let client = ClientPolicy::none()
            .timeout(1e-3)
            .retry(RetryPolicy {
                max_retries,
                base_backoff: base_us * 1e-6,
                multiplier: 2.0,
                jitter: 0.3,
            });
        let cfg = faulty_cfg((0.06, 0.1), (0.1, 0.14, 6.0), client, seed);
        let out = ClusterSim::run(&cfg).unwrap();
        let total = out.resilience();
        // Per-key attempts ≤ 1 + max_retries ⟹ retries ≤ max_retries
        // per eventually-forced key and per recovered key; the loosest
        // safe cluster-wide bound follows from failures:
        prop_assert!(total.retries <= u64::from(max_retries) * (total.forced_misses + total.timeouts + total.refused).max(1));
        if max_retries == 0 {
            prop_assert_eq!(total.retries, 0);
            // Every failure immediately falls through.
            prop_assert_eq!(total.forced_misses, total.timeouts + total.refused);
        }
        // Retry scheduling never loses a key (conservation again).
        let recorded: u64 = out.summaries().iter().map(|s| s.counters.jobs).sum();
        prop_assert_eq!(recorded, out.total_keys());
    }

    /// The hedged completion is exactly `min(primary, delay + replica)`:
    /// never worse than the primary, never better than the replica path.
    #[test]
    fn hedged_completion_is_min_of_attempts(
        primary_us in 1.0f64..10_000.0,
        delay_us in 1.0f64..5_000.0,
        replica_us in 1.0f64..10_000.0,
    ) {
        let (primary, delay, replica) =
            (primary_us * 1e-6, delay_us * 1e-6, replica_us * 1e-6);
        let (eff, won) = hedge_outcome(primary, delay, replica);
        prop_assert!(eff <= primary);
        prop_assert!(eff >= (delay + replica).min(primary));
        prop_assert_eq!(eff, primary.min(delay + replica));
        prop_assert_eq!(won, delay + replica < primary);
    }

    /// Hedging in a full run only ever lowers per-key latency (pathwise
    /// min against the same primary records), and wins are counted
    /// exactly when a record improved.
    #[test]
    fn hedging_is_pathwise_min_in_full_runs(
        delay_us in 100.0f64..2_000.0,
        seed in 0u64..300,
    ) {
        let params = ModelParams::builder().build().unwrap();
        let base = SimConfig::new(params)
            .duration(0.15)
            .warmup(0.05)
            .seed(seed)
            .fault_plan(FaultPlan::none().slowdown(0, 0.05, 0.2, 4.0));
        let plain = ClusterSim::run(&base).unwrap();
        let hedged = ClusterSim::run(
            &base.client(ClientPolicy::none().hedge(delay_us * 1e-6)),
        ).unwrap();
        prop_assert_eq!(plain.total_keys(), hedged.total_keys());
        let mut improved = 0u64;
        for j in 0..plain.shares().len() {
            for (a, b) in plain.records(j).iter().zip(hedged.records(j)) {
                prop_assert!(b.0 <= a.0, "hedging raised a latency");
                prop_assert_eq!(a.1, b.1); // db path untouched
                if b.0 < a.0 { improved += 1 }
            }
        }
        prop_assert_eq!(improved, hedged.resilience().hedges_won);
        prop_assert!(hedged.resilience().hedges_won <= hedged.resilience().hedges_sent);
    }

    /// Downtime/degraded-time accounting sums exactly to the scheduled
    /// windows clamped to the horizon, independent of traffic.
    #[test]
    fn downtime_accounting_sums_to_plan_windows(
        c0 in 0.02f64..0.08,
        clen in 0.01f64..0.3,
        s0 in 0.02f64..0.08,
        slen in 0.01f64..0.3,
        seed in 0u64..300,
    ) {
        let cfg = faulty_cfg(
            (c0, c0 + clen),
            (s0, s0 + slen, 3.0),
            ClientPolicy::none().timeout(2e-3),
            seed,
        );
        let horizon = cfg.warmup + cfg.duration; // 0.2
        let out = ClusterSim::run(&cfg).unwrap();
        let expect_down = (horizon - c0).max(0.0).min(clen);
        let expect_degraded = (horizon - s0).max(0.0).min(slen);
        let total = out.resilience();
        prop_assert!((total.downtime - expect_down).abs() < 1e-12,
            "downtime {} vs {expect_down}", total.downtime);
        prop_assert!((total.degraded_time - expect_degraded).abs() < 1e-12,
            "degraded {} vs {expect_degraded}", total.degraded_time);
        // Attributed to the right servers.
        prop_assert_eq!(out.summary(0).resilience.downtime, total.downtime);
        prop_assert_eq!(out.summary(1).resilience.degraded_time, total.degraded_time);
        prop_assert_eq!(out.summary(2).resilience.downtime, 0.0);
    }
}
